"""Equivalence tests: batched scoring engine vs. the legacy per-node path.

The batched, vocabulary-compiled engine (repro.core.extraction.scoring)
must reproduce the legacy chain (feature dicts → vectorizer → per-page
matmul) to full float precision: same subjects, same predicates, same
confidences, across the SWDE and IMDb fixtures, including pages with
zero text fields and single-class models.
"""

import numpy as np
import pytest

from repro.core.annotation.examples import TrainingExample
from repro.core.config import CeresConfig
from repro.core.extraction.extractor import CeresExtractor
from repro.core.extraction.scoring import compile_vocabulary
from repro.core.extraction.trainer import CeresTrainer
from repro.core.pipeline import CeresPipeline
from repro.datasets import generate_imdb, generate_swde, seed_kb_for
from repro.dom.parser import parse_html
from repro.kb.ontology import NAME_PREDICATE, OTHER_LABEL


def assert_pages_identical(batched, legacy):
    """Full-precision equality of two PageCandidates lists."""
    assert len(batched) == len(legacy)
    for fast, slow in zip(batched, legacy):
        assert fast.page_index == slow.page_index
        assert fast.subject == slow.subject
        assert fast.name_confidence == slow.name_confidence  # exact, not approx
        assert len(fast.candidates) == len(slow.candidates)
        for (node_f, pred_f, conf_f), (node_s, pred_s, conf_s) in zip(
            fast.candidates, slow.candidates
        ):
            assert node_f is node_s
            assert pred_f == pred_s
            assert conf_f == conf_s  # exact, not approx


def pool_vs_legacy(pool, documents):
    batched = pool.candidates(documents)
    legacy = []
    for page_index, document in enumerate(documents):
        extractor = pool.extractor_for(document)
        if extractor is None:
            from repro.core.extraction.extractor import PageCandidates

            legacy.append(PageCandidates(page_index, None, 0.0, []))
        else:
            legacy.append(extractor.legacy_candidates_for_page(document, page_index))
    return batched, legacy


class TestSWDEEquivalence:
    @pytest.fixture(scope="class")
    def swde_pool_and_docs(self):
        dataset = generate_swde("movie", n_sites=2, pages_per_site=14, seed=5)
        kb = seed_kb_for(dataset, 5)
        site = dataset.sites[0]
        documents = [page.document for page in site.pages]
        pipeline = CeresPipeline(kb, CeresConfig())
        result = pipeline.run(documents, documents)
        assert result.extractions, "fixture must actually extract"
        return pipeline.extractor_pool(result), documents

    def test_pool_candidates_identical(self, swde_pool_and_docs):
        pool, documents = swde_pool_and_docs
        batched, legacy = pool_vs_legacy(pool, documents)
        assert_pages_identical(batched, legacy)

    def test_extractions_identical(self, swde_pool_and_docs):
        pool, documents = swde_pool_and_docs
        threshold = CeresConfig().confidence_threshold
        batched, legacy = pool_vs_legacy(pool, documents)
        fast_rows = [
            (e.subject, e.predicate, e.object, e.confidence, e.page_index)
            for page in batched
            for e in page.extractions(threshold)
        ]
        slow_rows = [
            (e.subject, e.predicate, e.object, e.confidence, e.page_index)
            for page in legacy
            for e in page.extractions(threshold)
        ]
        assert fast_rows == slow_rows
        assert fast_rows  # non-degenerate

    def test_zero_text_field_page_in_batch(self, swde_pool_and_docs):
        pool, documents = swde_pool_and_docs
        empty = parse_html("<html><body><div class='x'></div></body></html>")
        mixed = [documents[0], empty, documents[1]]
        batched, legacy = pool_vs_legacy(pool, mixed)
        assert_pages_identical(batched, legacy)
        assert batched[1].subject is None
        assert batched[1].candidates == []

    def test_unseen_template_pages(self, swde_pool_and_docs):
        """Pages from a different site still route and score identically."""
        pool, _ = swde_pool_and_docs
        other = generate_swde("movie", n_sites=2, pages_per_site=6, seed=9)
        documents = [page.document for page in other.sites[1].pages]
        batched, legacy = pool_vs_legacy(pool, documents)
        assert_pages_identical(batched, legacy)


class TestIMDbEquivalence:
    def test_film_pages_identical(self):
        dataset = generate_imdb(seed=3, n_films=14, n_people=8, n_episodes=4)
        documents = [page.document for page in dataset.film_pages]
        pipeline = CeresPipeline(dataset.kb, CeresConfig())
        result = pipeline.run(documents, documents)
        pool = pipeline.extractor_pool(result)
        if not pool:
            pytest.skip("fixture trained no cluster model")
        batched, legacy = pool_vs_legacy(pool, documents)
        assert_pages_identical(batched, legacy)


def tiny_page(i: int) -> str:
    return (
        "<html><body><div class='main'>"
        f"<h1 class='title'>Title {i}</h1>"
        f"<div class='row'><span class='label'>Director:</span>"
        f"<span class='dval'>Director {i}</span></div>"
        f"<p class='blurb'>Blurb {i}</p>"
        "</div></body></html>"
    )


class TestDirectModelEquivalence:
    def test_single_class_model(self):
        """A degenerate one-label model batches identically (probability 1)."""
        docs = [parse_html(tiny_page(i)) for i in range(6)]
        examples = [
            TrainingExample(i, doc.text_fields()[0], OTHER_LABEL)
            for i, doc in enumerate(docs)
        ]
        model = CeresTrainer(CeresConfig()).train(examples, docs)
        assert len(model.labels) == 1
        extractor = CeresExtractor(model, CeresConfig())
        for page_index, doc in enumerate(docs):
            fast = extractor.candidates_for_page(doc, page_index)
            slow = extractor.legacy_candidates_for_page(doc, page_index)
            assert_pages_identical([fast], [slow])

    def test_predict_proba_for_pages_matches_per_node(self):
        docs = [parse_html(tiny_page(i)) for i in range(8)]
        examples = []
        for i, doc in enumerate(docs):
            fields = doc.text_fields()
            examples.append(TrainingExample(i, fields[0], NAME_PREDICATE))
            examples.append(
                TrainingExample(
                    i,
                    next(f for f in fields if f.text.startswith("Director ")),
                    "directed_by",
                )
            )
            examples.append(TrainingExample(i, fields[-1], OTHER_LABEL))
        model = CeresTrainer(CeresConfig()).train(examples, docs)
        batched = model.predict_proba_for_pages(docs)
        for doc, fast in zip(docs, batched):
            nodes = [n for n in doc.text_fields() if n.text.strip()]
            slow = model.predict_proba_for_nodes(nodes, doc)
            assert fast.shape == slow.shape
            assert np.array_equal(fast, slow)  # bitwise, not allclose

    def test_pipe_characters_in_attributes_and_text(self):
        """Vocabulary compilation must invert names whose values contain
        the separator character."""

        def weird_page(i: int) -> str:
            return (
                "<html><body><div class='a|b|2|0'>"
                f"<h1 class='t|u1|'>Name|{i}</h1>"
                "<div class='row'><span class='l|bl'>Price|label:</span>"
                f"<span class='v'>Value {i}</span></div>"
                "</div></body></html>"
            )

        docs = [parse_html(weird_page(i)) for i in range(8)]
        examples = []
        for i, doc in enumerate(docs):
            fields = doc.text_fields()
            examples.append(TrainingExample(i, fields[0], NAME_PREDICATE))
            examples.append(TrainingExample(i, fields[-1], "price"))
            examples.append(TrainingExample(i, fields[1], OTHER_LABEL))
        config = CeresConfig(frequent_string_min_fraction=0.2)
        model = CeresTrainer(config).train(examples, docs)
        assert model.feature_extractor.frequent_strings  # text features active
        extractor = CeresExtractor(model, config)
        for page_index, doc in enumerate(docs):
            fast = extractor.candidates_for_page(doc, page_index)
            slow = extractor.legacy_candidates_for_page(doc, page_index)
            assert_pages_identical([fast], [slow])


class TestCompileVocabulary:
    LEVELS = 4
    WIDTH = 5

    def packed(self, level: int, sibling: int) -> int:
        return level * (2 * self.WIDTH + 1) + sibling + self.WIDTH

    def test_structural_names_invert_exactly(self):
        vocabulary = {
            "xfer:s|tag|div|0|0": 0,
            "site:s|class|hero|2|-3": 1,
            "site:s|class|a|b|1|4": 2,  # value contains the separator
            "site:s|id|x|0|0": 3,
        }
        struct, text = compile_vocabulary(vocabulary, self.LEVELS, self.WIDTH)
        assert struct[("tag", "div")] == {self.packed(0, 0): 0}
        assert struct[("class", "hero")] == {self.packed(2, -3): 1}
        assert struct[("class", "a|b")] == {self.packed(1, 4): 2}
        assert struct[("id", "x")] == {self.packed(0, 0): 3}
        assert text == {}

    def test_out_of_window_positions_skipped(self):
        """Positions the scorer can never probe don't enter the lookup
        (and can't alias another window slot via packing)."""
        vocabulary = {
            "xfer:s|tag|div|9|0": 0,  # level beyond the ancestor window
            "xfer:s|tag|div|0|7": 1,  # sibling beyond the width
            "xfer:s|tag|div|1|-2": 2,
        }
        struct, _ = compile_vocabulary(vocabulary, self.LEVELS, self.WIDTH)
        assert struct[("tag", "div")] == {self.packed(1, -2): 2}

    def test_text_names_invert_exactly(self):
        vocabulary = {
            "site:t|Director:|u0|": 0,
            "site:t|Director:|u2|div/span": 1,
            "site:t|Genre | mix|u1|td": 2,  # text contains the separator
        }
        struct, text = compile_vocabulary(vocabulary, self.LEVELS, self.WIDTH)
        assert struct == {}
        assert text[("Director:", "")] == {0: 0}
        assert text[("Director:", "div/span")] == {2: 1}
        assert text[("Genre | mix", "td")] == {1: 2}

    def test_foreign_names_skipped(self):
        struct, text = compile_vocabulary(
            {"bias": 0, "site:s|broken": 1, "site:t|x": 2, "xfer:s|tag|div|a|b": 3},
            self.LEVELS,
            self.WIDTH,
        )
        assert struct == {}
        assert text == {}

    def test_wrong_namespace_skipped(self):
        """Names the extractors could never emit — un-namespaced, or a
        family under the other namespace — don't enter the lookups."""
        struct, text = compile_vocabulary(
            {
                "s|tag|div|0|0": 0,       # pre-namespace legacy name
                "t|Director:|u0|": 1,     # pre-namespace legacy name
                "site:s|tag|div|0|0": 2,  # tags live in xfer:, not site:
                "xfer:t|Director:|u0|": 3,  # text features live in site:
            },
            self.LEVELS,
            self.WIDTH,
        )
        assert struct == {}
        assert text == {}
