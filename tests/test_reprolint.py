"""reprolint self-tests: every rule against bad/good fixture pairs,
suppression syntax, the CLI surface, and the tree-lints-clean gate."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro import analysis
from repro.__main__ import main

REPO_ROOT = Path(__file__).resolve().parent.parent


def active_ids(findings):
    return sorted(
        finding.rule_id
        for finding in analysis.active_findings(findings)
    )


def lint(source: str, module: str):
    return analysis.lint_source(source, module)


# ---------------------------------------------------------------------------
# Rule fixtures: (rule id, module path, bad source, expected finding count,
# good source).  The bad snippet must produce exactly its rule's findings;
# the good snippet must be completely clean.
# ---------------------------------------------------------------------------

RULE_FIXTURES = [
    (
        "id-cache-key",
        "repro/kb/matcher.py",
        "cache[id(document)] = value\n",
        1,
        "cache[document.doc_id] = value\nother[id(node)] = value\n",
    ),
    (
        "id-cache-key",
        "repro/core/extraction/features.py",
        "key = id(self.doc)\n",
        1,
        "key = self.doc.doc_id\n",
    ),
    (
        "sibling-index-scan",
        "repro/dom/xpath.py",
        "position = siblings.index(element)\n",
        1,
        "position = element.element_index\n",
    ),
    (
        "sibling-index-scan",
        "repro/dom/xpath.py",
        "position = node.siblings.index(child)\n",
        1,
        "position = names.index(name)\n",
    ),
    (
        "bare-sleep",
        "repro/runtime/runner.py",
        "import time\ntime.sleep(0.5)\n",
        1,
        "from repro.runtime.resilience import sleep_backoff\n"
        "sleep_backoff(attempt=1)\n",
    ),
    (
        "bare-sleep",
        "repro/runtime/runner.py",
        "from time import sleep as pause\npause(2)\n",
        2,  # the import and the aliased call
        "# time.sleep(1) in a comment is not a finding\nx = 1\n",
    ),
    (
        "bare-sleep",
        "benchmarks/bench_example.py",
        "import time as t\nt.sleep(1)\n",
        1,
        "t = object()\nt.sleep = None\n",  # not the time module
    ),
    (
        "bare-perf-counter",
        "benchmarks/bench_example.py",
        "import time\nstart = time.perf_counter()\n",
        1,
        "from repro import obs\n"
        "with obs.metrics().timer('bench.seconds'):\n    pass\n",
    ),
    (
        "rounded-confidence",
        "repro/runtime/runner.py",
        "row = {'confidence': round(extraction.confidence, 4)}\n",
        1,
        "row = {'confidence': extraction.confidence}\n"
        "summary = round(total, 2)\n",
    ),
    (
        "xfer-site-literal",
        "repro/transfer/features.py",
        "features.append('xpath(' + step + ')')\n",
        1,
        '"""Doc: xpath( and attr= in prose are fine."""\n'
        "features.append('xfer:depth=' + str(depth))\n",
    ),
    (
        "xfer-site-literal",
        "repro/transfer/features.py",
        "value = node_features(node, attr='class')\n",
        1,
        "value = node_features(node)\n",
    ),
    (
        "lock-discipline",
        "repro/runtime/service.py",
        "class Service:\n"
        "    def stats(self):\n"
        "        return self._sites.stats()\n",
        1,
        "class Service:\n"
        "    def __init__(self):\n"
        "        self._sites = {}\n"
        "        self._ever_resident = set()\n"
        "    def stats(self):\n"
        "        with self._residency_lock:\n"
        "            return self._sites.stats()\n",
    ),
    (
        "lock-discipline",
        "repro/runtime/service.py",
        # A nested function defined under the lock runs after release.
        "class Service:\n"
        "    def deferred(self):\n"
        "        with self._residency_lock:\n"
        "            def later():\n"
        "                return self._ever_resident\n"
        "        return later\n",
        1,
        "class Service:\n"
        "    def snapshot(self):\n"
        "        with self._residency_lock:\n"
        "            sites = dict(self._sites)\n"
        "            ever = set(self._ever_resident)\n"
        "        return sites, ever\n",
    ),
    (
        "unsorted-set-iteration",
        "repro/fusion/report.py",
        "for key in set(left) | set(right):\n    emit(key)\n",
        1,
        "for key in sorted(set(left) | set(right)):\n    emit(key)\n",
    ),
    (
        "unsorted-set-iteration",
        "repro/evaluation/summary.py",
        "rows = [fmt(p) for p in predicates.keys() | extra.keys()]\n",
        1,
        # a lone .keys() preserves insertion order — not a finding
        "rows = [fmt(p) for p in predicates.keys()]\n",
    ),
    (
        "atomic-write",
        "repro/runtime/state.py",
        "with path.open('w', encoding='utf-8') as sink:\n"
        "    sink.write(data)\n",
        1,
        "from repro.runtime.resilience import atomic_write\n"
        "with atomic_write(path) as sink:\n"
        "    sink.write(data)\n"
        "text = path.open('r').read()\n",
    ),
    (
        "atomic-write",
        "repro/fusion/store.py",
        "sink = open(target, 'w')\n",
        1,
        "source = open(target)\n",
    ),
    (
        "exception-taxonomy",
        "repro/runtime/worker.py",
        "try:\n    work()\nexcept Exception:\n    pass\n",
        1,
        "from repro.runtime.resilience import classify_error\n"
        "try:\n    work()\n"
        "except Exception as exc:\n"
        "    kind = classify_error(exc)\n"
        "try:\n    work()\n"
        "except Exception:\n    raise\n"
        "try:\n    work()\n"
        "except ValueError:\n    pass\n",
    ),
]


class TestRuleFixtures:
    @pytest.mark.parametrize(
        "rule_id, module, bad, expected, good",
        RULE_FIXTURES,
        ids=[f"{case[0]}-{i}" for i, case in enumerate(RULE_FIXTURES)],
    )
    def test_bad_fixture_produces_exactly_its_finding(
        self, rule_id, module, bad, expected, good
    ):
        findings = analysis.active_findings(lint(bad, module))
        assert [f.rule_id for f in findings] == [rule_id] * expected
        for finding in findings:
            assert finding.line >= 1
            assert finding.message
            assert finding.fix_hint

    @pytest.mark.parametrize(
        "rule_id, module, bad, expected, good",
        RULE_FIXTURES,
        ids=[f"{case[0]}-{i}" for i, case in enumerate(RULE_FIXTURES)],
    )
    def test_good_fixture_is_clean(self, rule_id, module, bad, expected, good):
        assert active_ids(lint(good, module)) == []

    def test_every_rule_has_a_fixture(self):
        covered = {case[0] for case in RULE_FIXTURES} | {"tracked-bytecode"}
        assert covered == set(analysis.KNOWN_RULE_IDS)

    def test_rules_scope_by_module(self):
        sleepy = "import time\ntime.sleep(1)\n"
        # sanctioned modules are exempt
        assert active_ids(lint(sleepy, "repro/runtime/resilience.py")) == []
        assert active_ids(lint(sleepy, "repro/testing/faults.py")) == []
        # perf_counter is only gated in benchmarks/
        timing = "import time\nt0 = time.perf_counter()\n"
        assert active_ids(lint(timing, "repro/obs/tracer.py")) == []
        # id(document) is the cache module's own business
        keyed = "slot = id(document)\n"
        assert active_ids(lint(keyed, "repro/runtime/cache.py")) == []
        # atomic-write discipline stops at the sanctioned primitive
        writing = "sink = open(path, 'w')\n"
        assert active_ids(lint(writing, "repro/runtime/resilience.py")) == []

    def test_unparseable_module_is_a_parse_error_finding(self):
        findings = lint("def broken(:\n", "repro/kb/matcher.py")
        assert [f.rule_id for f in findings] == [analysis.PARSE_ERROR_RULE_ID]


class TestTrackedBytecodeRule:
    def _scan(self, root):
        rule = analysis.RULES_BY_ID["tracked-bytecode"]
        return list(rule.scan_repo(root))

    def test_flags_tracked_pyc_and_pycache(self, tmp_path):
        subprocess.run(
            ["git", "init", "-q", str(tmp_path)], check=True
        )
        bad_pyc = tmp_path / "module.pyc"
        bad_pyc.write_bytes(b"\x00")
        cache_dir = tmp_path / "__pycache__"
        cache_dir.mkdir()
        (cache_dir / "module.cpython-311.pyc").write_bytes(b"\x00")
        (tmp_path / "fine.py").write_text("x = 1\n")
        subprocess.run(
            ["git", "-C", str(tmp_path), "add", "-f", "."], check=True
        )
        findings = self._scan(tmp_path)
        assert {f.rule_id for f in findings} == {"tracked-bytecode"}
        assert {f.path for f in findings} == {
            "module.pyc",
            "__pycache__/module.cpython-311.pyc",
        }

    def test_clean_repo_and_no_git_are_silent(self, tmp_path):
        clean = tmp_path / "clean"
        clean.mkdir()
        subprocess.run(["git", "init", "-q", str(clean)], check=True)
        (clean / "fine.py").write_text("x = 1\n")
        subprocess.run(["git", "-C", str(clean), "add", "."], check=True)
        assert self._scan(clean) == []
        bare = tmp_path / "no_git"
        bare.mkdir()
        assert self._scan(bare) == []


class TestSuppressions:
    MODULE = "repro/dom/xpath.py"
    BAD = "position = siblings.index(element)"

    def test_suppression_with_reason_silences_the_finding(self):
        source = (
            f"{self.BAD}  # repro: allow[sibling-index-scan] "
            "cold path, one-off migration\n"
        )
        findings = lint(source, self.MODULE)
        assert analysis.active_findings(findings) == []
        (suppressed,) = findings
        assert suppressed.suppressed
        assert suppressed.suppress_reason == "cold path, one-off migration"

    def test_standalone_comment_covers_the_next_line(self):
        source = (
            "# repro: allow[sibling-index-scan] cold path\n"
            f"{self.BAD}\n"
        )
        assert active_ids(lint(source, self.MODULE)) == []

    def test_standalone_comment_does_not_cover_two_lines_down(self):
        source = (
            "# repro: allow[sibling-index-scan] cold path\n"
            "x = 1\n"
            f"{self.BAD}\n"
        )
        assert active_ids(lint(source, self.MODULE)) == [
            "sibling-index-scan"
        ]

    def test_missing_reason_is_a_finding(self):
        source = f"{self.BAD}  # repro: allow[sibling-index-scan]\n"
        assert active_ids(lint(source, self.MODULE)) == [
            "sibling-index-scan",  # not silenced by a reasonless allow
            analysis.SUPPRESSION_RULE_ID,
        ]

    def test_unknown_rule_id_is_a_finding(self):
        source = "x = 1  # repro: allow[no-such-rule] because\n"
        findings = lint(source, self.MODULE)
        assert active_ids(findings) == [analysis.SUPPRESSION_RULE_ID]
        assert "no-such-rule" in findings[0].message

    def test_wrong_rule_id_does_not_silence(self):
        source = (
            f"{self.BAD}  # repro: allow[bare-sleep] not even that rule\n"
        )
        assert active_ids(lint(source, self.MODULE)) == [
            "sibling-index-scan"
        ]

    def test_allow_syntax_inside_a_string_is_not_a_suppression(self):
        source = (
            "text = 'repro: allow[sibling-index-scan] nope'\n"
            f"{self.BAD}\n"
        )
        assert active_ids(lint(source, self.MODULE)) == [
            "sibling-index-scan"
        ]


class TestEngine:
    def test_normalize_module(self):
        cases = {
            "src/repro/fusion/store.py": "repro/fusion/store.py",
            "/abs/repo/src/repro/kb/io.py": "repro/kb/io.py",
            "benchmarks/bench_fusion.py": "benchmarks/bench_fusion.py",
            "/abs/repo/benchmarks/bench_x.py": "benchmarks/bench_x.py",
        }
        for raw, expected in cases.items():
            assert analysis.normalize_module(raw) == expected

    def test_select_rules_include_exclude(self):
        only = analysis.select_rules(include=("bare-sleep",))
        assert [rule.id for rule in only] == ["bare-sleep"]
        without = analysis.select_rules(exclude=("bare-sleep",))
        assert "bare-sleep" not in {rule.id for rule in without}
        with pytest.raises(analysis.UnknownRuleError):
            analysis.select_rules(include=("nope",))

    def test_findings_sort_stably_by_location(self):
        source = "import time\ntime.sleep(1)\ntime.sleep(2)\n"
        findings = lint(source, "repro/runtime/runner.py")
        assert [f.line for f in findings] == sorted(f.line for f in findings)


class TestLintCLI:
    @staticmethod
    def _write_bad_tree(tmp_path: Path) -> Path:
        # under a src/ anchor so module scoping kicks in
        bad = tmp_path / "src" / "repro" / "dom" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "position = siblings.index(element)\n"
            "import time\n"
            "time.sleep(1)\n",
            encoding="utf-8",
        )
        return bad

    def test_exit_code_is_finding_count(self, tmp_path, capsys):
        bad = self._write_bad_tree(tmp_path)
        assert main(["lint", str(bad)]) == 2
        out = capsys.readouterr().out
        assert "sibling-index-scan" in out and "bare-sleep" in out

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        good = tmp_path / "src" / "repro" / "ok.py"
        good.parent.mkdir(parents=True)
        good.write_text("x = 1\n", encoding="utf-8")
        assert main(["lint", str(good)]) == 0

    def test_json_format(self, tmp_path, capsys):
        bad = self._write_bad_tree(tmp_path)
        code = main(["lint", str(bad), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == payload["count"] == 2
        rules = {finding["rule"] for finding in payload["findings"]}
        assert rules == {"sibling-index-scan", "bare-sleep"}
        for finding in payload["findings"]:
            assert finding["path"].endswith("bad.py")
            assert finding["line"] >= 1

    def test_github_format(self, tmp_path, capsys):
        bad = self._write_bad_tree(tmp_path)
        main(["lint", str(bad), "--format", "github"])
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 2
        for line in out:
            assert line.startswith("::error file=")
            assert ",line=" in line and ",title=" in line

    def test_rule_filter_and_exclude(self, tmp_path, capsys):
        bad = self._write_bad_tree(tmp_path)
        assert main(["lint", str(bad), "--rule", "bare-sleep"]) == 1
        assert "sibling-index-scan" not in capsys.readouterr().out
        assert main(["lint", str(bad), "--exclude", "bare-sleep"]) == 1
        assert "bare-sleep" not in capsys.readouterr().out

    def test_unknown_rule_id_exits_two_with_message(self, tmp_path, capsys):
        bad = self._write_bad_tree(tmp_path)
        assert main(["lint", str(bad), "--rule", "bogus"]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_show_suppressed_reports_silenced_findings(
        self, tmp_path, capsys
    ):
        source = (
            "position = siblings.index(element)"
            "  # repro: allow[sibling-index-scan] migration one-off\n"
        )
        path = tmp_path / "src" / "repro" / "quiet.py"
        path.parent.mkdir(parents=True)
        path.write_text(source, encoding="utf-8")
        assert main(["lint", str(path)]) == 0
        assert "sibling-index-scan" not in capsys.readouterr().out
        assert main(["lint", str(path), "--show-suppressed"]) == 0
        out = capsys.readouterr().out
        assert "sibling-index-scan" in out and "(suppressed)" in out

    def test_exit_code_caps_below_retcode_wraparound(self, tmp_path):
        noisy = tmp_path / "src" / "repro" / "noisy.py"
        noisy.parent.mkdir(parents=True)
        noisy.write_text(
            "import time\n" + "time.sleep(1)\n" * 200, encoding="utf-8"
        )
        assert main(["lint", str(noisy)]) == 125

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in analysis.KNOWN_RULE_IDS:
            assert rule_id in out


class TestTreeLintsClean:
    def test_src_and_benchmarks_lint_clean(self):
        findings = analysis.lint_paths(
            [REPO_ROOT / "src", REPO_ROOT / "benchmarks"],
            repo_root=REPO_ROOT,
        )
        active = analysis.active_findings(findings)
        rendered = analysis.format_text(active)
        assert active == [], f"tree must lint clean:\n{rendered}"
        # the sanctioned suppressions all carry reasons
        for finding in findings:
            assert finding.suppressed and finding.suppress_reason

    def test_reintroducing_a_grep_gated_pattern_fails(self):
        # the acceptance scenario: the old grep gates' patterns still fail
        regressions = {
            "id-cache-key": (
                "repro/kb/matcher.py",
                "cache[id(document)] = state\n",
            ),
            "bare-sleep": (
                "repro/runtime/runner.py",
                "import time\n\nwhile not done():\n    time.sleep(1)\n",
            ),
            "rounded-confidence": (
                "repro/runtime/runner.py",
                "row['confidence'] = round(extraction.confidence, 4)\n",
            ),
        }
        for rule_id, (module, source) in regressions.items():
            assert active_ids(lint(source, module)) == [rule_id], rule_id
