"""Fault tolerance: journal/resume equivalence, retries, quarantine,
deadlines, and the fault-injection harness itself.

The resume-equivalence tests are the acceptance bar of the resilience
layer: a corpus run killed after *any* site boundary and resumed must
produce extraction and fused JSONL byte-identical to an uninterrupted
run, with hash-unchanged completed sites skipped, under both inline and
pooled execution.
"""

import io
import json
import threading
import time

import pytest

from repro import obs
from repro.core.config import CeresConfig
from repro.datasets import generate_swde, seed_kb_for
from repro.kb.io import save_kb
from repro.runtime import run_corpus
from repro.runtime.resilience import (
    Deadline,
    JournalError,
    OverloadError,
    RunJournal,
    SiteTimeoutError,
    backoff_delay,
    classify_error,
    config_fingerprint,
    deadline,
    site_fingerprint,
    soft_deadline,
)
from repro.testing.faults import (
    ENV_VAR,
    FaultError,
    FaultPlan,
    FaultSpec,
    OverloadFaultError,
    TransientFaultError,
    active,
    fault_point,
)

#: Backoff base small enough that retry sleeps don't slow the suite.
FAST = {"retry_backoff": 0.001}


@pytest.fixture(scope="module")
def corpus_on_disk(tmp_path_factory):
    """Three healthy synthetic sites plus the seed KB."""
    tmp = tmp_path_factory.mktemp("resilience-corpus")
    dataset = generate_swde("movie", n_sites=4, pages_per_site=14, seed=11)
    kb = seed_kb_for(dataset, 11)
    kb_path = tmp / "kb.json"
    save_kb(kb, kb_path)
    corpus_dir = tmp / "sites"
    corpus_dir.mkdir()
    site_names = []
    for site in dataset.sites[1:4]:
        site_dir = corpus_dir / site.name
        site_dir.mkdir()
        for index, page in enumerate(site.pages):
            (site_dir / f"page{index:03d}.html").write_text(page.html)
        site_names.append(site.name)
    return kb_path, corpus_dir, sorted(site_names)


# ---------------------------------------------------------------------------
# primitives


class TestClassifyError:
    @pytest.mark.parametrize(
        "exc",
        [
            TransientFaultError("x"),
            TimeoutError("x"),
            SiteTimeoutError("x"),
            ConnectionResetError("x"),
            InterruptedError("x"),
            OSError(28, "ENOSPC"),  # errno.ENOSPC
        ],
    )
    def test_transient(self, exc):
        assert classify_error(exc) == "transient"

    @pytest.mark.parametrize(
        "exc",
        [
            OverloadError("x"),
            OverloadFaultError("x"),
            OSError(11, "EAGAIN"),  # errno.EAGAIN — busy, not broken
            OSError(16, "EBUSY"),  # errno.EBUSY
        ],
    )
    def test_overload(self, exc):
        """Contention is its own category: retried later, but it never
        counts toward a circuit breaker and is never permanent."""
        assert classify_error(exc) == "overload"

    @pytest.mark.parametrize(
        "exc",
        [
            FaultError("x"),
            FileNotFoundError("x"),
            NotADirectoryError("x"),
            PermissionError("x"),
            OSError(2, "ENOENT"),
            ValueError("x"),
            RuntimeError("x"),
            KeyError("x"),
        ],
    )
    def test_permanent(self, exc):
        assert classify_error(exc) == "permanent"


class TestBackoff:
    def test_deterministic_per_key_and_attempt(self):
        assert backoff_delay(3, key="imdb") == backoff_delay(3, key="imdb")
        assert backoff_delay(3, key="imdb") != backoff_delay(3, key="other")
        assert backoff_delay(2, key="imdb") != backoff_delay(3, key="imdb")

    def test_window_bounds_and_cap(self):
        for attempt in range(1, 12):
            delay = backoff_delay(attempt, base=0.5, cap=30.0, key="s")
            window = min(30.0, 0.5 * 2 ** (attempt - 1))
            assert window / 2 <= delay <= window
        # Far past the cap the window stops growing.
        assert backoff_delay(50, base=0.5, cap=30.0, key="s") <= 30.0

    def test_attempt_counts_from_one(self):
        with pytest.raises(ValueError):
            backoff_delay(0)


class TestDeadline:
    def test_interrupts_blocking_sleep(self):
        start = time.monotonic()
        with pytest.raises(SiteTimeoutError):
            with deadline(0.1):
                time.sleep(10)
        assert time.monotonic() - start < 5

    def test_noop_when_unlimited(self):
        with deadline(None):
            pass
        with deadline(0):
            pass

    def test_soft_fallback_off_main_thread(self):
        """Signals aren't deliverable off the main thread; deadline
        degrades to the cooperative soft deadline there — the block is
        not preempted, but the overrun is still raised on exit."""
        outcome = {}

        def work():
            try:
                with deadline(0.05):
                    time.sleep(0.15)
                outcome["ok"] = True
            except SiteTimeoutError as exc:
                outcome["error"] = exc

        thread = threading.Thread(target=work)
        thread.start()
        thread.join()
        assert "error" in outcome  # overrun detected post-hoc, not lost

    def test_within_budget_off_main_thread(self):
        outcome = {}

        def work():
            with deadline(5.0):
                pass
            outcome["ok"] = True

        thread = threading.Thread(target=work)
        thread.start()
        thread.join()
        assert outcome.get("ok") is True

    def test_timer_cleared_after_block(self):
        with deadline(0.2):
            pass
        time.sleep(0.3)  # would raise if the alarm survived the block


class TestSoftDeadline:
    def test_check_raises_after_expiry(self):
        with soft_deadline(0.02) as handle:
            handle.check()  # within budget: no-op
            time.sleep(0.05)
            assert handle.expired()
            with pytest.raises(SiteTimeoutError):
                handle.check()

    def test_unbounded_never_expires(self):
        for seconds in (None, 0, -1):
            with soft_deadline(seconds) as handle:
                assert handle.remaining() is None
                assert not handle.expired()
                handle.check()

    def test_remaining_counts_down_and_floors_at_zero(self):
        with soft_deadline(0.05) as handle:
            first = handle.remaining()
            assert 0 < first <= 0.05
            time.sleep(0.08)
            assert handle.remaining() == 0.0

    def test_timer_arms_expired_event(self):
        """A waiter blocked on the event wakes at expiry without anyone
        polling expired()."""
        with soft_deadline(0.05) as handle:
            assert handle.expired_event.wait(2.0)

    def test_wait_returns_false_on_deadline(self):
        never = threading.Event()
        with soft_deadline(0.05) as handle:
            start = time.monotonic()
            assert handle.wait(never) is False
            assert time.monotonic() - start < 2.0

    def test_wait_returns_true_when_event_fires(self):
        event = threading.Event()
        with soft_deadline(5.0) as handle:
            threading.Timer(0.02, event.set).start()
            assert handle.wait(event) is True

    def test_standalone_deadline_has_no_timer(self):
        handle = Deadline(0.02)
        time.sleep(0.05)
        assert handle.expired()
        assert handle.expired_event.is_set()  # set by the observing call


# ---------------------------------------------------------------------------
# the fault harness


class TestFaultPlan:
    def test_round_trips_through_env_json(self):
        plan = FaultPlan(
            [
                FaultSpec("site.run", action="raise-transient",
                          site="imdb", times=1, skip=2),
                FaultSpec("page.parse", action="hang",
                          page="p7.html", delay=1.5),
            ]
        )
        assert FaultPlan.from_json(plan.to_json()).specs == plan.specs

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultSpec("x", action="explode")

    def test_times_and_skip_window(self):
        plan = FaultPlan([FaultSpec("p", times=2, skip=1)])
        with active(plan):
            fault_point("p")  # skipped
            with pytest.raises(FaultError):
                fault_point("p")
            with pytest.raises(FaultError):
                fault_point("p")
            fault_point("p")  # exhausted

    def test_site_and_page_filters(self):
        plan = FaultPlan([FaultSpec("p", site="a", page="x.html")])
        with active(plan):
            fault_point("p", site="b", page="x.html")
            fault_point("p", site="a", page="y.html")
            fault_point("other", site="a", page="x.html")
            with pytest.raises(FaultError):
                fault_point("p", site="a", page="x.html")

    def test_raise_overload_action(self):
        plan = FaultPlan([FaultSpec("p", action="raise-overload")])
        with active(plan):
            with pytest.raises(OverloadFaultError) as caught:
                fault_point("p")
        assert classify_error(caught.value) == "overload"
        # Still a FaultError, so generic fault handling catches it too.
        assert isinstance(caught.value, FaultError)

    def test_active_restores_environment(self, monkeypatch):
        import os

        monkeypatch.delenv(ENV_VAR, raising=False)
        with active(FaultPlan([FaultSpec("p")])):
            assert ENV_VAR in os.environ
        assert ENV_VAR not in os.environ
        fault_point("p")  # no plan: must be a no-op


# ---------------------------------------------------------------------------
# the journal


class TestRunJournal:
    HASH = "cafe" * 16

    def test_fresh_open_refuses_existing_journal(self, tmp_path):
        with RunJournal(tmp_path) as journal:
            journal.open(config_hash=self.HASH)
        with pytest.raises(JournalError, match="already exists"):
            RunJournal(tmp_path).open(config_hash=self.HASH)

    def test_resume_replays_last_state_per_site(self, tmp_path):
        with RunJournal(tmp_path) as journal:
            journal.open(config_hash=self.HASH)
            journal.record_site("a", "running", fingerprint="f1")
            journal.record_site("a", "done", fingerprint="f1")
            journal.record_site("b", "running", fingerprint="f2")
        states = RunJournal(tmp_path).open(config_hash=self.HASH, resume=True)
        assert states["a"]["state"] == "done"
        assert states["b"]["state"] == "running"

    def test_resume_rejects_config_mismatch(self, tmp_path):
        with RunJournal(tmp_path) as journal:
            journal.open(config_hash=self.HASH)
        with pytest.raises(JournalError, match="different\\s+config"):
            RunJournal(tmp_path).open(config_hash="0" * 64, resume=True)

    def test_torn_trailing_line_is_discarded(self, tmp_path):
        with RunJournal(tmp_path) as journal:
            journal.open(config_hash=self.HASH)
            journal.record_site("a", "done", fingerprint="f")
        path = tmp_path / RunJournal.JOURNAL_NAME
        path.write_text(
            path.read_text() + '{"event": "site", "site": "b", "sta'
        )
        states = RunJournal(tmp_path).open(config_hash=self.HASH, resume=True)
        assert set(states) == {"a"}

    def test_torn_middle_line_is_corruption(self, tmp_path):
        with RunJournal(tmp_path) as journal:
            journal.open(config_hash=self.HASH)
            journal.record_site("a", "done", fingerprint="f")
        path = tmp_path / RunJournal.JOURNAL_NAME
        lines = path.read_text().splitlines()
        lines[0] = lines[0][:-5]  # tear a *non-final* record
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="corrupt journal record"):
            RunJournal(tmp_path).open(config_hash=self.HASH, resume=True)

    def test_rows_round_trip_and_site_key_quoting(self, tmp_path):
        rows = [{"site": "a/b:c", "confidence": 0.123456789012345}]
        with RunJournal(tmp_path) as journal:
            journal.open(config_hash=self.HASH)
            path = journal.write_rows("a/b:c", rows)
            assert path.parent == journal.rows_dir
            assert "/" not in path.name[: -len(".jsonl")].replace("%2F", "")
            assert journal.read_rows("a/b:c") == rows

    def test_failed_rows_write_leaves_no_temp_or_torn_file(self, tmp_path):
        with RunJournal(tmp_path) as journal:
            journal.open(config_hash=self.HASH)
            journal.write_rows("s", [{"n": 1}])
            before = journal.read_rows_text("s")
            plan = FaultPlan([FaultSpec("rows.write", action="corrupt-write")])
            with active(plan), pytest.raises(FaultError):
                journal.write_rows("s", [{"n": 2}])
            assert journal.read_rows_text("s") == before
            assert list(journal.rows_dir.glob("*.tmp*")) == []

    def test_fingerprints_track_content_and_config(self, tmp_path):
        page = tmp_path / "p.html"
        page.write_text("<html>1</html>")
        first = site_fingerprint([page])
        assert site_fingerprint([page]) == first
        page.write_text("<html>2</html>")
        assert site_fingerprint([page]) != first
        base = config_fingerprint({"a": 1}, 0.5)
        assert config_fingerprint({"a": 1}, 0.5) == base
        assert config_fingerprint({"a": 1}, 0.6) != base
        assert config_fingerprint({"a": 2}, 0.5) != base


# ---------------------------------------------------------------------------
# hardened workers (retries / quarantine / timeout), via run_corpus


def _run(corpus_dir, kb_path, *, plan=None, counters=None, **kwargs):
    """One inline corpus run, optionally under a fault plan, returning
    (reports, output-bytes, parent counters)."""
    output = io.StringIO()
    kwargs.setdefault("max_workers", 1)
    with obs.scoped(tracing=False, metrics=True) as (_, registry):
        if plan is not None:
            with active(plan):
                reports = run_corpus(
                    corpus_dir, kb_path, None, output=output, **kwargs
                )
        else:
            reports = run_corpus(
                corpus_dir, kb_path, None, output=output, **kwargs
            )
        snapshot = registry.snapshot()["counters"]
    if counters is not None:
        counters.update(snapshot)
    return reports, output.getvalue()


class TestRetriesAndQuarantine:
    def test_transient_failure_retried_then_succeeds(self, corpus_on_disk):
        kb_path, corpus_dir, site_names = corpus_on_disk
        victim = site_names[0]
        plan = FaultPlan(
            [FaultSpec("site.run", action="raise-transient",
                       site=victim, times=1)]
        )
        counters = {}
        reports, _ = _run(
            corpus_dir, kb_path, plan=plan, counters=counters,
            max_attempts=3, **FAST,
        )
        by_site = {r.site: r for r in reports}
        assert by_site[victim].ok
        assert by_site[victim].attempts == 2
        assert not by_site[victim].degraded
        assert counters["runner.retries"] == 1
        assert counters["runner.sites_ok"] == len(site_names)
        assert all(by_site[s].attempts == 1 for s in site_names[1:])

    def test_permanent_failure_fails_fast_no_retry(self, corpus_on_disk):
        kb_path, corpus_dir, site_names = corpus_on_disk
        victim = site_names[0]
        plan = FaultPlan([FaultSpec("site.run", action="raise", site=victim)])
        counters = {}
        reports, _ = _run(
            corpus_dir, kb_path, plan=plan, counters=counters,
            max_attempts=3, **FAST,
        )
        by_site = {r.site: r for r in reports}
        assert not by_site[victim].ok
        assert by_site[victim].attempts == 1  # permanent: no retries
        assert "injected fault" in by_site[victim].error
        assert by_site[victim].traceback
        assert counters.get("runner.retries", 0) == 0
        assert counters["runner.sites_failed"] == 1
        # The healthy sites are untouched.
        assert counters["runner.sites_ok"] == len(site_names) - 1

    def test_poison_page_quarantined_not_fatal(self, corpus_on_disk, tmp_path):
        kb_path, corpus_dir, site_names = corpus_on_disk
        victim = site_names[0]
        plan = FaultPlan(
            [FaultSpec("page.parse", action="raise",
                       site=victim, page="page003.html")]
        )
        counters = {}
        run_dir = tmp_path / "run"
        with active(plan):
            output = io.StringIO()
            with obs.scoped(tracing=False, metrics=True) as (_, registry):
                reports = run_corpus(
                    corpus_dir, kb_path, None, max_workers=1,
                    output=output, run_dir=run_dir, max_attempts=2, **FAST,
                )
                counters = registry.snapshot()["counters"]
        by_site = {r.site: r for r in reports}
        victim_report = by_site[victim]
        assert victim_report.ok
        assert victim_report.degraded
        assert victim_report.n_quarantined_pages == 1
        assert victim_report.quarantined_pages == ["page003.html"]
        assert victim_report.n_pages == 13  # 14 on disk, one quarantined
        assert "quarantined=1p" in victim_report.summary()
        assert counters["runner.quarantined"] == 1
        # Zero sites lost, and the journal records the quarantine.
        assert all(r.ok for r in reports)
        states = {}
        for record in RunJournal(run_dir).replay():
            if record.get("event") == "site":
                states[record["site"]] = record
        assert states[victim]["state"] == "quarantined"
        assert states[victim]["report"]["n_quarantined_pages"] == 1
        healthy = [s for s in site_names if s != victim]
        assert all(states[s]["state"] == "done" for s in healthy)

    def test_hung_site_times_out_and_fails(self, corpus_on_disk):
        """A hang inside the pipeline exceeds the wall-clock budget in
        both full-batch and degraded mode — the site fails with a
        timeout instead of wedging the run."""
        kb_path, corpus_dir, site_names = corpus_on_disk
        victim = site_names[0]
        plan = FaultPlan(
            [FaultSpec("site.extract", action="hang", site=victim, delay=30)]
        )
        start = time.monotonic()
        reports, _ = _run(
            corpus_dir, kb_path, plan=plan,
            site_timeout=0.5, max_attempts=2, **FAST,
        )
        elapsed = time.monotonic() - start
        by_site = {r.site: r for r in reports}
        assert not by_site[victim].ok
        assert "SiteTimeoutError" in by_site[victim].error
        assert by_site[victim].attempts == 2  # timeouts are transient
        assert elapsed < 25  # never served the full 30s hang
        assert all(by_site[s].ok for s in site_names[1:])

    def test_hung_page_quarantined_under_page_deadline(self, corpus_on_disk):
        """Degraded mode gives each page its own budget: a page that
        hangs forever is quarantined and the site completes."""
        kb_path, corpus_dir, site_names = corpus_on_disk
        victim = site_names[0]
        plan = FaultPlan(
            [FaultSpec("page.parse", action="hang",
                       site=victim, page="page000.html", delay=30)]
        )
        reports, _ = _run(
            corpus_dir, kb_path, plan=plan,
            site_timeout=1.0, max_attempts=1, **FAST,
        )
        by_site = {r.site: r for r in reports}
        assert by_site[victim].ok
        assert by_site[victim].degraded
        assert by_site[victim].quarantined_pages == ["page000.html"]

    def test_acceptance_scenario_zero_sites_lost(self, corpus_on_disk):
        """ISSUE acceptance: one site fails transiently once, one other
        site has a poison page — the run completes with the failure
        retried, the page quarantined and reported, zero sites lost."""
        kb_path, corpus_dir, site_names = corpus_on_disk
        flaky, poisoned = site_names[0], site_names[1]
        plan = FaultPlan(
            [
                FaultSpec("site.run", action="raise-transient",
                          site=flaky, times=1),
                FaultSpec("page.parse", action="raise",
                          site=poisoned, page="page005.html"),
            ]
        )
        counters = {}
        reports, _ = _run(
            corpus_dir, kb_path, plan=plan, counters=counters,
            max_attempts=3, **FAST,
        )
        by_site = {r.site: r for r in reports}
        assert all(r.ok for r in reports), [r.error for r in reports]
        assert by_site[flaky].attempts == 2
        assert by_site[poisoned].degraded
        assert by_site[poisoned].quarantined_pages == ["page005.html"]
        assert counters["runner.retries"] == 1
        assert counters["runner.quarantined"] == 1
        assert counters["runner.sites_ok"] == len(site_names)

    def test_attempt_spans_traced(self, corpus_on_disk):
        kb_path, corpus_dir, site_names = corpus_on_disk
        victim = site_names[0]
        plan = FaultPlan(
            [FaultSpec("site.run", action="raise-transient",
                       site=victim, times=1)]
        )
        with obs.scoped(tracing=True, metrics=True) as (tracer, _):
            with active(plan):
                run_corpus(
                    corpus_dir, kb_path, None, max_workers=1,
                    max_attempts=2, **FAST,
                )
            attempts = [
                span for span in tracer.export()
                if span["name"] == "site.attempt"
            ]
        by_attr = [
            (span["attrs"]["site"], span["attrs"]["attempt"])
            for span in attempts
        ]
        assert by_attr.count((victim, 1)) == 1
        assert by_attr.count((victim, 2)) == 1
        for site in site_names[1:]:
            assert (site, 1) in by_attr

    def test_worker_crash_recorded_with_traceback_and_counter(
        self, corpus_on_disk, tmp_path
    ):
        """A worker dying without a Python traceback (os._exit) becomes
        a failed report with the parent-side traceback and counts into
        runner.sites_failed — the satellite fix."""
        import shutil

        kb_path, corpus_dir, site_names = corpus_on_disk
        # A one-site corpus: a dead worker breaks its whole pool, so
        # isolate the blast radius for the assertion.
        solo = tmp_path / "solo"
        solo.mkdir()
        victim = site_names[0]
        shutil.copytree(corpus_dir / victim, solo / victim)
        plan = FaultPlan([FaultSpec("site.run", action="exit", site=victim)])
        with obs.scoped(tracing=False, metrics=True) as (_, registry):
            with active(plan):
                reports = run_corpus(
                    solo, kb_path, None, max_workers=2, **FAST,
                )
            counters = registry.snapshot()["counters"]
        (report,) = reports
        assert not report.ok
        assert "worker crashed" in report.error
        assert report.traceback  # parent-side traceback, not None
        assert counters["runner.sites_failed"] == 1


# ---------------------------------------------------------------------------
# resume equivalence


def _journaled_run(corpus_dir, kb_path, run_dir, *, resume=False,
                   max_workers=1, plan=None):
    """One journaled run; returns (reports, output bytes, fused bytes)."""
    output, fused = io.StringIO(), io.StringIO()
    kwargs = dict(
        config=CeresConfig(), max_workers=max_workers, output=output,
        fuse=fused, run_dir=run_dir, resume=resume, retry_backoff=0.001,
    )
    if plan is not None:
        with active(plan):
            reports = run_corpus(corpus_dir, kb_path, None, **kwargs)
    else:
        reports = run_corpus(corpus_dir, kb_path, None, **kwargs)
    return reports, output.getvalue(), fused.getvalue()


class TestResumeEquivalence:
    @pytest.fixture(scope="class")
    def baseline(self, corpus_on_disk, tmp_path_factory):
        kb_path, corpus_dir, site_names = corpus_on_disk
        run_dir = tmp_path_factory.mktemp("baseline-run")
        reports, out, fused = _journaled_run(corpus_dir, kb_path, run_dir)
        assert all(r.ok for r in reports)
        assert out and fused
        return out, fused

    @pytest.mark.parametrize("max_workers", [1, 2])
    def test_kill_after_each_site_boundary_resumes_byte_identical(
        self, corpus_on_disk, tmp_path, baseline, max_workers
    ):
        """The property: for every site boundary k, a run killed right
        after committing its k-th site and resumed produces extraction
        and fused JSONL byte-identical to the uninterrupted run."""
        kb_path, corpus_dir, site_names = corpus_on_disk
        base_out, base_fused = baseline
        for k in range(1, len(site_names) + 1):
            run_dir = tmp_path / f"run-w{max_workers}-k{k}"
            kill_plan = FaultPlan(
                [FaultSpec("runner.site_committed", action="raise",
                           skip=k - 1, times=1)]
            )
            with pytest.raises(FaultError):
                _journaled_run(
                    corpus_dir, kb_path, run_dir,
                    max_workers=max_workers, plan=kill_plan,
                )
            reports, out, fused = _journaled_run(
                corpus_dir, kb_path, run_dir,
                resume=True, max_workers=max_workers,
            )
            assert out == base_out, f"extraction diverged (k={k})"
            assert fused == base_fused, f"fused output diverged (k={k})"
            resumed = [r for r in reports if r.resumed]
            assert len(resumed) == k, f"expected {k} sites skipped"
            assert all(r.ok for r in reports)

    def test_resume_of_completed_run_skips_everything(
        self, corpus_on_disk, tmp_path, baseline
    ):
        kb_path, corpus_dir, site_names = corpus_on_disk
        base_out, base_fused = baseline
        run_dir = tmp_path / "run"
        _journaled_run(corpus_dir, kb_path, run_dir)
        reports, out, fused = _journaled_run(
            corpus_dir, kb_path, run_dir, resume=True
        )
        assert all(r.resumed for r in reports)
        assert out == base_out
        assert fused == base_fused
        assert all("resumed" in r.summary() for r in reports)

    def test_changed_page_invalidates_only_that_site(
        self, corpus_on_disk, tmp_path
    ):
        kb_path, corpus_dir, site_names = corpus_on_disk
        # Work on a private copy: this test mutates a page.
        import shutil

        private = tmp_path / "corpus"
        shutil.copytree(corpus_dir, private)
        run_dir = tmp_path / "run"
        _journaled_run(private, kb_path, run_dir)
        victim = site_names[0]
        page = private / victim / "page000.html"
        page.write_text(page.read_text() + "<!-- refreshed crawl -->")
        reports, _, _ = _journaled_run(
            private, kb_path, run_dir, resume=True
        )
        by_site = {r.site: r for r in reports}
        assert not by_site[victim].resumed  # fingerprint changed: re-run
        assert by_site[victim].ok
        for other in site_names[1:]:
            assert by_site[other].resumed

    def test_fresh_run_refuses_existing_run_dir(
        self, corpus_on_disk, tmp_path
    ):
        kb_path, corpus_dir, _ = corpus_on_disk
        run_dir = tmp_path / "run"
        _journaled_run(corpus_dir, kb_path, run_dir)
        with pytest.raises(JournalError, match="already exists"):
            _journaled_run(corpus_dir, kb_path, run_dir)

    def test_resume_with_different_config_refused(
        self, corpus_on_disk, tmp_path
    ):
        kb_path, corpus_dir, _ = corpus_on_disk
        run_dir = tmp_path / "run"
        _journaled_run(corpus_dir, kb_path, run_dir)
        with pytest.raises(JournalError, match="different\\s+config"):
            run_corpus(
                corpus_dir, kb_path, None, max_workers=1,
                config=CeresConfig(), threshold=0.9,
                run_dir=run_dir, resume=True,
            )

    def test_resume_requires_run_dir(self, corpus_on_disk):
        kb_path, corpus_dir, _ = corpus_on_disk
        with pytest.raises(ValueError, match="requires run_dir"):
            run_corpus(corpus_dir, kb_path, None, resume=True)


# ---------------------------------------------------------------------------
# CLI


class TestResilienceCLI:
    def test_resume_flag_requires_run_dir(self, corpus_on_disk, tmp_path):
        from repro.__main__ import main

        kb_path, corpus_dir, _ = corpus_on_disk
        with pytest.raises(SystemExit, match="--resume requires --run-dir"):
            main([
                "run-corpus", "--kb", str(kb_path),
                "--corpus", str(corpus_dir),
                "--registry", str(tmp_path / "models"), "--resume",
            ])

    def test_max_attempts_validated(self, corpus_on_disk, tmp_path):
        from repro.__main__ import main

        kb_path, corpus_dir, _ = corpus_on_disk
        with pytest.raises(SystemExit, match="--max-attempts"):
            main([
                "run-corpus", "--kb", str(kb_path),
                "--corpus", str(corpus_dir),
                "--registry", str(tmp_path / "models"),
                "--max-attempts", "0",
            ])
        with pytest.raises(SystemExit, match="--site-timeout"):
            main([
                "run-corpus", "--kb", str(kb_path),
                "--corpus", str(corpus_dir),
                "--registry", str(tmp_path / "models"),
                "--site-timeout", "0",
            ])

    def test_run_dir_then_resume_round_trip(
        self, corpus_on_disk, tmp_path, capsys
    ):
        from repro.__main__ import main

        kb_path, corpus_dir, site_names = corpus_on_disk
        out = tmp_path / "triples.jsonl"
        args = [
            "run-corpus", "--kb", str(kb_path), "--corpus", str(corpus_dir),
            "--registry", str(tmp_path / "models"), "--output", str(out),
            "--workers", "1", "--run-dir", str(tmp_path / "run"),
        ]
        assert main(args) == 0
        first = out.read_bytes()
        assert first
        assert main(args + ["--resume"]) == 0
        assert out.read_bytes() == first
        stderr = capsys.readouterr().err
        assert f"{len(site_names)} resumed unchanged" in stderr
