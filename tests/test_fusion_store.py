"""Tests for repro.fusion.store (streaming FactStore) and reliability."""

import io
import json
import random

import pytest

from repro.core.extraction.extractor import Extraction
from repro.dom.node import TextNode
from repro.fusion import (
    FactStore,
    estimate_reliability,
    fuse_extractions,
    fused_fact_row,
    write_fused_jsonl,
)


def ext(subject, predicate, obj, confidence, page=0):
    return Extraction(subject, predicate, obj, confidence, page, TextNode(obj))


def synthetic_rows(n_sites=12, n_facts=60, seed=3):
    """Overlapping per-site extraction rows over a shared fact universe."""
    rng = random.Random(seed)
    predicates = ["genre", "directed_by", "release_date", "runtime"]
    rows = []
    for site_index in range(n_sites):
        site = f"site_{site_index:02d}"
        for fact_index in rng.sample(range(n_facts), k=n_facts // 2):
            predicate = predicates[fact_index % len(predicates)]
            rows.append(
                {
                    "site": site,
                    "page": f"p{fact_index}.html",
                    "subject": f"Film {fact_index // len(predicates)}",
                    "predicate": predicate,
                    "object": f"Value {fact_index}",
                    "confidence": round(rng.uniform(0.3, 0.99), 6),
                }
            )
    return rows


def fused_bytes(rows, **store_kwargs):
    store = FactStore(**store_kwargs)
    for row in rows:
        store.add_row(row)
    sink = io.StringIO()
    write_fused_jsonl(store.finalize(), sink)
    return sink.getvalue()


class TestFactStoreBasics:
    def test_matches_fuse_extractions(self):
        extractions_by_site = {
            "a": [ext("X", "genre", "Drama", 0.8), ext("Y", "genre", "War", 0.6)],
            "b": [ext("x", "genre", "DRAMA", 0.7)],
        }
        store = FactStore()
        for site, extractions in extractions_by_site.items():
            store.add_extractions(site, extractions)
        from_store = store.finalize()
        from_function = fuse_extractions(extractions_by_site)
        assert [fused_fact_row(f) for f in from_store] == [
            fused_fact_row(f) for f in from_function
        ]

    def test_add_row_requires_site(self):
        store = FactStore()
        with pytest.raises(ValueError, match="site"):
            store.add_row({"subject": "X", "predicate": "p", "object": "o",
                           "confidence": 0.5})
        store.add_row(
            {"subject": "X", "predicate": "p", "object": "o",
             "confidence": 0.5},
            site="a",
        )
        assert store.resident_facts == 1

    def test_finalize_consumes_the_store(self):
        store = FactStore()
        store.add("a", "X", "genre", "Drama", 0.5)
        store.finalize()
        with pytest.raises(RuntimeError, match="finalized"):
            store.add("a", "X", "genre", "Drama", 0.5)
        with pytest.raises(RuntimeError, match="finalized"):
            store.finalize()

    def test_bad_construction(self):
        with pytest.raises(ValueError):
            FactStore(n_shards=0)
        with pytest.raises(ValueError):
            FactStore(max_resident_facts=0)


class TestSpillAndMerge:
    def test_spill_bounds_resident_facts(self, tmp_path):
        rows = synthetic_rows(n_sites=10, n_facts=80)
        store = FactStore(
            n_shards=4, max_resident_facts=25, spill_dir=tmp_path
        )
        peak = 0
        for row in rows:
            store.add_row(row)
            peak = max(peak, store.resident_facts)
        # One over-the-bound insert triggers a spill of the largest
        # shard, so residency never runs away.
        assert peak <= 25 + 1
        assert store.n_spills > 0
        assert list(tmp_path.iterdir())  # runs landed on disk
        facts = store.finalize()
        assert facts
        assert not list(tmp_path.iterdir())  # finalize cleans its runs

    def test_output_invariant_to_shards_spills_and_order(self):
        """The acceptance bar: byte-identical fused JSONL regardless of
        shard count, spill pressure, and ingestion order."""
        rows = synthetic_rows()
        baseline = fused_bytes(rows)
        assert baseline.strip()
        shuffled = list(rows)
        random.Random(99).shuffle(shuffled)
        variants = [
            fused_bytes(rows, n_shards=1),
            fused_bytes(rows, n_shards=16),
            fused_bytes(rows, n_shards=3, max_resident_facts=10),
            fused_bytes(shuffled, n_shards=5, max_resident_facts=7),
        ]
        for variant in variants:
            assert variant == baseline

    def test_run_files_compact_below_fd_bound(self, tmp_path):
        """Hundreds of spills must not accumulate hundreds of run files:
        runs compact at MAX_RUNS_PER_SHARD so finalize never opens more
        than that many files at once (fd-limit safety at corpus scale)."""
        store = FactStore(n_shards=1, max_resident_facts=1, spill_dir=tmp_path)
        for index in range(400):
            store.add("a", f"S{index}", "genre", f"O{index}", 0.5)
        assert store.n_spills > FactStore.MAX_RUNS_PER_SHARD
        n_run_files = len(list(tmp_path.iterdir()))
        assert n_run_files <= FactStore.MAX_RUNS_PER_SHARD
        facts = store.finalize()
        assert len(facts) == 400  # compaction loses nothing

    def test_compaction_preserves_output(self, tmp_path):
        rows = synthetic_rows(n_sites=8, n_facts=50)
        # max_resident_facts=1 forces a spill per insert — far past the
        # compaction threshold.
        assert fused_bytes(rows) == fused_bytes(
            rows, n_shards=2, max_resident_facts=1,
            spill_dir=tmp_path,
        )

    def test_close_reclaims_spills_without_finalize(self, tmp_path):
        """An aborted run (error before finalize) must not leak run files."""
        store = FactStore(n_shards=2, max_resident_facts=2, spill_dir=tmp_path)
        for index in range(10):
            store.add("a", f"S{index}", "genre", f"O{index}", 0.5)
        assert list(tmp_path.iterdir())
        store.close()
        assert not list(tmp_path.iterdir())
        with pytest.raises(RuntimeError, match="finalized"):
            store.finalize()
        store.close()  # idempotent

    def test_context_manager_cleans_up_on_error(self, tmp_path):
        with pytest.raises(RuntimeError, match="boom"):
            with FactStore(
                n_shards=1, max_resident_facts=1, spill_dir=tmp_path
            ) as store:
                for index in range(5):
                    store.add("a", f"S{index}", "genre", "O", 0.5)
                assert list(tmp_path.iterdir())
                raise RuntimeError("boom")
        assert not list(tmp_path.iterdir())

    def test_merged_support_takes_max_per_site(self):
        store = FactStore(n_shards=1, max_resident_facts=1)
        store.add("a", "X", "genre", "Drama", 0.4)
        store.add("a", "Y", "genre", "War", 0.5)  # forces a spill
        store.add("a", "X", "genre", "Drama", 0.9)
        store.add("b", "X", "genre", "Drama", 0.2)
        facts = store.finalize()
        by_key = {f.key(): f for f in facts}
        fact = by_key[("x", "genre", "drama")]
        assert fact.site_support == {"a": 0.9, "b": 0.2}


class TestReliabilityWeighting:
    def test_low_reliability_site_discounted(self):
        support = {"good": [ext("X", "genre", "Drama", 0.8)],
                   "bad": [ext("X", "genre", "War", 0.8)]}
        plain = fuse_extractions(support)
        weighted = fuse_extractions(
            support, site_reliability={"good": 0.9, "bad": 0.1}
        )
        plain_scores = {f.object: f.score for f in plain}
        weighted_scores = {f.object: f.score for f in weighted}
        assert plain_scores["Drama"] == plain_scores["War"]
        assert weighted_scores["Drama"] > weighted_scores["War"]
        assert abs(weighted_scores["War"] - 0.1 * 0.8) < 1e-12

    def test_estimate_reliability_smoothing(self):
        assert estimate_reliability(0, 0) == 0.5  # pure prior
        assert estimate_reliability(50, 49) == pytest.approx(50 / 52)
        assert estimate_reliability(50, 2) == pytest.approx(3 / 52)
        # Clamps: never exactly 0 or 1.
        assert estimate_reliability(100000, 0) == 0.05
        assert estimate_reliability(100000, 100000) == 0.99
        with pytest.raises(ValueError):
            estimate_reliability(1, 2)

    def test_observe_agreement_respects_flag(self):
        silent = FactStore()
        silent.observe_agreement("a", 10, 9)
        assert silent.site_reliability == {}
        active = FactStore(use_reliability=True)
        active.observe_agreement("a", 10, 9)
        assert active.site_reliability["a"] == pytest.approx(10 / 12)


class TestFusedRows:
    def test_row_shape_and_site_order(self):
        store = FactStore()
        store.add("zeta", "X", "genre", "Drama", 0.5)
        store.add("alpha", "X", "genre", "Drama", 0.7)
        (fact,) = store.finalize()
        row = fused_fact_row(fact)
        assert list(row["sites"]) == ["alpha", "zeta"]
        assert row["n_sites"] == 2
        assert row["subject"] == "X"

    def test_jsonl_confidences_round_trip(self):
        """Row-level float precision survives JSON exactly."""
        confidence = 0.7234567890123456
        store = FactStore()
        store.add("a", "X", "genre", "Drama", confidence)
        sink = io.StringIO()
        write_fused_jsonl(store.finalize(), sink)
        row = json.loads(sink.getvalue())
        assert row["sites"]["a"] == confidence
