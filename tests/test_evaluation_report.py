"""Tests for repro.evaluation.report."""

from repro.evaluation.report import format_number, format_prf, format_table


class TestFormatPrf:
    def test_value(self):
        assert format_prf(0.876) == "0.88"
        assert format_prf(1.0) == "1.00"

    def test_none(self):
        assert format_prf(None) == "NA"


class TestFormatNumber:
    def test_int_grouping(self):
        assert format_number(1250000) == "1,250,000"

    def test_float(self):
        assert format_number(3.14159) == "3.14"

    def test_none(self):
        assert format_number(None) == "NA"


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = table.splitlines()
        assert lines[0] == "a   | bb"
        assert lines[1] == "----+---"
        assert lines[2] == "1   | 2 "
        assert lines[3] == "333 | 4 "

    def test_title(self):
        table = format_table(["x"], [["1"]], title="My Table")
        assert table.startswith("My Table\n========")

    def test_empty_rows(self):
        table = format_table(["col"], [])
        assert "col" in table
