"""Tests for repro.dom.xpath and repro.dom.serialize."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dom.parser import parse_html
from repro.dom.serialize import to_html
from repro.dom.xpath import (
    evaluate_xpath,
    format_steps,
    generalize_paths,
    parse_xpath,
    pattern_matches,
    xpath_steps,
)


class TestParseFormat:
    def test_parse(self):
        assert parse_xpath("/html[1]/body[1]/div[2]") == (
            ("html", 1),
            ("body", 1),
            ("div", 2),
        )

    def test_parse_wildcard(self):
        assert parse_xpath("/html[1]/div[*]") == (("html", 1), ("div", None))

    def test_parse_missing_index_is_wildcard(self):
        assert parse_xpath("/html/div") == (("html", None), ("div", None))

    def test_parse_text_step(self):
        steps = parse_xpath("/html[1]/p[1]/text()[2]")
        assert steps[-1] == ("text()", 2)

    def test_rejects_relative(self):
        with pytest.raises(ValueError):
            parse_xpath("html[1]/div[1]")

    def test_format_roundtrip(self):
        path = "/html[1]/body[1]/div[2]/text()[1]"
        assert format_steps(parse_xpath(path)) == path

    def test_format_wildcard(self):
        assert format_steps((("div", None),)) == "/div[*]"

    @given(
        st.lists(
            st.tuples(st.sampled_from(["div", "span", "p", "li"]), st.integers(1, 9)),
            min_size=1,
            max_size=6,
        )
    )
    def test_parse_format_roundtrip_property(self, steps):
        steps = tuple(steps)
        assert parse_xpath(format_steps(steps)) == steps


class TestEvaluate:
    HTML = "<html><body><div><p>a</p><p>b</p></div><div><p>c</p></div></body></html>"

    def test_element(self):
        doc = parse_html(self.HTML)
        node = evaluate_xpath(doc.root, "/html[1]/body[1]/div[2]/p[1]")
        assert node is not None and node.text_content() == "c"

    def test_text(self):
        doc = parse_html(self.HTML)
        node = evaluate_xpath(doc.root, "/html[1]/body[1]/div[1]/p[2]/text()[1]")
        assert node.text == "b"

    def test_missing(self):
        doc = parse_html(self.HTML)
        assert evaluate_xpath(doc.root, "/html[1]/body[1]/div[3]") is None
        assert evaluate_xpath(doc.root, "/html[1]/body[1]/span[1]") is None
        assert evaluate_xpath(doc.root, "/html[1]/body[1]/div[1]/p[1]/text()[2]") is None

    def test_wrong_root(self):
        doc = parse_html(self.HTML)
        assert evaluate_xpath(doc.root, "/body[1]/div[1]") is None

    def test_every_node_xpath_evaluates_to_itself(self):
        doc = parse_html(self.HTML)
        for field in doc.text_fields():
            assert evaluate_xpath(doc.root, field.xpath) is field
        for element in doc.iter_elements():
            assert evaluate_xpath(doc.root, element.xpath) is element


class TestXPathSteps:
    def test_matches_parsed_string(self):
        doc = parse_html(TestEvaluate.HTML)
        for field in doc.text_fields():
            assert xpath_steps(field) == parse_xpath(field.xpath)


class TestGeneralize:
    def test_single_path(self):
        path = parse_xpath("/html[1]/div[1]")
        assert generalize_paths([path]) == path

    def test_wildcards_disagreeing_index(self):
        a = parse_xpath("/html[1]/div[1]/span[2]")
        b = parse_xpath("/html[1]/div[1]/span[5]")
        assert format_steps(generalize_paths([a, b])) == "/html[1]/div[1]/span[*]"

    def test_multiple_positions(self):
        a = parse_xpath("/html[1]/div[1]/span[2]")
        b = parse_xpath("/html[1]/div[2]/span[5]")
        assert format_steps(generalize_paths([a, b])) == "/html[1]/div[*]/span[*]"

    def test_different_tags_fail(self):
        a = parse_xpath("/html[1]/div[1]")
        b = parse_xpath("/html[1]/span[1]")
        assert generalize_paths([a, b]) is None

    def test_different_lengths_fail(self):
        a = parse_xpath("/html[1]/div[1]")
        b = parse_xpath("/html[1]/div[1]/span[1]")
        assert generalize_paths([a, b]) is None

    def test_empty(self):
        assert generalize_paths([]) is None


class TestPatternMatches:
    def test_exact(self):
        pattern = parse_xpath("/html[1]/div[1]")
        assert pattern_matches(pattern, parse_xpath("/html[1]/div[1]"))

    def test_wildcard(self):
        pattern = parse_xpath("/html[1]/div[*]")
        assert pattern_matches(pattern, parse_xpath("/html[1]/div[7]"))

    def test_index_mismatch(self):
        pattern = parse_xpath("/html[1]/div[2]")
        assert not pattern_matches(pattern, parse_xpath("/html[1]/div[3]"))

    def test_tag_mismatch(self):
        pattern = parse_xpath("/html[1]/div[*]")
        assert not pattern_matches(pattern, parse_xpath("/html[1]/span[1]"))

    def test_length_mismatch(self):
        pattern = parse_xpath("/html[1]/div[*]")
        assert not pattern_matches(pattern, parse_xpath("/html[1]/div[1]/b[1]"))

    def test_generalized_pattern_matches_sources(self):
        paths = [
            parse_xpath("/html[1]/ul[1]/li[1]"),
            parse_xpath("/html[1]/ul[1]/li[4]"),
            parse_xpath("/html[1]/ul[1]/li[9]"),
        ]
        pattern = generalize_paths(paths)
        for path in paths:
            assert pattern_matches(pattern, path)


class TestSerialize:
    def test_roundtrip_structure(self):
        html = (
            '<html><body><div class="a" id="b"><p>x <b>y</b></p>'
            "<ul><li>1</li><li>2</li></ul></div></body></html>"
        )
        doc = parse_html(html)
        serialized = to_html(doc.root)
        doc2 = parse_html(serialized)
        assert [f.text for f in doc2.text_fields()] == [
            f.text for f in doc.text_fields()
        ]
        assert [f.xpath for f in doc2.text_fields()] == [
            f.xpath for f in doc.text_fields()
        ]
        assert to_html(doc2.root) == serialized

    def test_escaping(self):
        doc = parse_html("<html><body><p>Tom &amp; Jerry</p></body></html>")
        serialized = to_html(doc.root)
        assert "&amp;" in serialized
        doc2 = parse_html(serialized)
        assert doc2.text_fields()[0].text == "Tom & Jerry"

    def test_attribute_escaping(self):
        doc = parse_html('<html><body><div title="a &quot;b&quot;">x</div></body></html>')
        doc2 = parse_html(to_html(doc.root))
        div = next(e for e in doc2.iter_elements() if e.tag == "div")
        assert div.get("title") == 'a "b"'

    def test_void_serialization(self):
        doc = parse_html("<html><body>a<br>b</body></html>")
        assert "<br>" in to_html(doc.root)
        assert "</br>" not in to_html(doc.root)
