"""Tests for repro.core.annotation.relation (Algorithm 2)."""

from repro.core.annotation.relation import RelationAnnotator
from repro.core.annotation.topic import TopicIdentifier
from repro.core.config import CeresConfig
from repro.dom.parser import parse_html
from repro.kb.ontology import Ontology, Predicate
from repro.kb.store import KnowledgeBase
from repro.kb.triple import Entity, Value


def build_kb() -> KnowledgeBase:
    ontology = Ontology(
        [
            Predicate("directed_by", range_kind="entity"),
            Predicate("written_by", range_kind="entity"),
            Predicate("has_cast_member", range_kind="entity", multi_valued=True),
            Predicate("genre", range_kind="string", multi_valued=True),
        ]
    )
    kb = KnowledgeBase(ontology)
    return kb


def spike_lee_site(n_pages: int = 6) -> tuple[KnowledgeBase, list]:
    """Pages reproducing Example 3.1: the director also acts, and the cast
    list holds the 'acted in' mention; plus Example 3.2: genres duplicated
    in a recommendation block."""
    kb = build_kb()
    pages = []
    for i in range(n_pages):
        film = f"f{i}"
        director = f"d{i}"
        writer_is_director = i % 3 == 0  # partial overlap, like reality
        kb.add_entity(Entity(film, f"Feature Film {i} Story", "film"))
        kb.add_entity(Entity(director, f"Director Person {i}", "person"))
        kb.add_entity(Entity(f"w{i}", f"Writer Person {i}", "person"))
        cast = []
        for j in range(3):
            actor = f"a{i}_{j}"
            kb.add_entity(Entity(actor, f"Actor Person {i} {j}", "person"))
            cast.append(actor)
        writer_name = (
            f"Director Person {i}" if writer_is_director else f"Writer Person {i}"
        )
        director_acts = i % 2 == 0  # the Spike Lee case, on some pages
        kb.add_fact(film, "directed_by", Value.entity(director))
        kb.add_fact(
            film, "written_by",
            Value.entity(director if writer_is_director else f"w{i}"),
        )
        if director_acts:
            kb.add_fact(film, "has_cast_member", Value.entity(director))
        for actor in cast:
            kb.add_fact(film, "has_cast_member", Value.entity(actor))
        kb.add_fact(film, "genre", Value.literal(f"GenreA{i % 2}"))
        kb.add_fact(film, "genre", Value.literal(f"GenreB{i % 3}"))

        cast_items = "".join(
            f"<li class='cast'>Actor Person {i} {j}</li>" for j in range(3)
        )
        if director_acts:
            cast_items += f"<li class='cast'>Director Person {i}</li>"
        html = (
            f"<html><body><div class='main'>"
            f"<h1>Feature Film {i} Story</h1>"
            f"<div class='credit'><span>Director</span><span>Director Person {i}</span></div>"
            f"<div class='credit'><span>Writer</span><span>{writer_name}</span></div>"
            f"<div class='genres'><span>GenreA{i % 2}</span><span>GenreB{i % 3}</span></div>"
            f"<ul class='castlist'>{cast_items}</ul>"
            # Recommendation block duplicating another film's genres.
            f"<div class='recs'><h4>Related Film {i}</h4>"
            f"<span>GenreA{(i + 1) % 2}</span><span>GenreB{(i + 1) % 3}</span></div>"
            f"</div></body></html>"
        )
        pages.append(parse_html(html))
    return kb, pages


def annotate(kb, pages, config=None):
    config = config or CeresConfig()
    identifier = TopicIdentifier(kb, config)
    topics = identifier.identify(pages)
    annotator = RelationAnnotator(kb, config, identifier.matcher)
    return annotator.annotate(pages, topics), topics


class TestLocalEvidence:
    def test_acted_in_resolved_to_cast_list(self):
        """Example 3.1: the director's 'has_cast_member' mention resolves to
        the cast-list occurrence, not the credit rows."""
        kb, pages = spike_lee_site()
        annotated, _ = annotate(kb, pages)
        assert annotated
        director_cast = [
            a
            for page in annotated
            if page.page_index % 2 == 0  # pages where the director acts
            for a in page.annotations
            if a.predicate == "has_cast_member"
            and a.object_text.startswith("Director")
        ]
        assert director_cast, "director's cast membership not annotated"
        for annotation in director_cast:
            assert "li" in annotation.node.xpath, (
                "expected the cast-list mention, got " + annotation.node.xpath
            )

    def test_at_most_one_mention_per_object_per_predicate(self):
        kb, pages = spike_lee_site()
        annotated, _ = annotate(kb, pages)
        for page in annotated:
            seen = set()
            for annotation in page.annotations:
                key = (annotation.predicate, annotation.object_key)
                assert key not in seen, f"object annotated twice for {key}"
                seen.add(key)

    def test_directed_by_on_director_row(self):
        kb, pages = spike_lee_site(9)
        annotated, _ = annotate(kb, pages)
        directed = [
            a
            for page in annotated
            for a in page.annotations
            if a.predicate == "directed_by"
        ]
        assert directed
        # Must NOT be the cast-list node.
        for annotation in directed:
            assert "li" not in annotation.node.xpath


class TestGlobalEvidence:
    def test_genre_annotated_in_dominant_region(self):
        """Example 3.2: duplicated genre mentions resolve to the info
        section (larger cluster), not the recommendation block."""
        kb, pages = spike_lee_site(8)
        annotated, _ = annotate(kb, pages)
        genre_nodes = [
            a.node.xpath
            for page in annotated
            for a in page.annotations
            if a.predicate == "genre"
        ]
        assert genre_nodes
        for xpath in genre_nodes:
            assert "div[3]" in xpath or "genres" in xpath or "div[4]" not in xpath

    def test_topic_node_never_annotated_as_relation(self):
        kb, pages = spike_lee_site()
        annotated, topics = annotate(kb, pages)
        for page in annotated:
            for annotation in page.annotations:
                assert annotation.node is not page.topic_node


class TestInformativenessFilter:
    def test_pages_below_min_annotations_dropped(self):
        kb, pages = spike_lee_site()
        config = CeresConfig(min_annotations_per_page=1000)
        annotated, topics = annotate(kb, pages, config)
        assert topics  # topics were found
        assert annotated == []  # but no page passes the filter


class TestBestLocalMentions:
    def test_single_mention_trivial(self):
        kb, pages = spike_lee_site(2)
        annotator = RelationAnnotator(kb, CeresConfig())
        field = pages[0].text_fields()[0]
        assert annotator.best_local_mentions([field], [[field]]) == [field]

    def test_mention_with_more_co_objects_wins(self):
        kb = build_kb()
        kb.add_entity(Entity("f", "The Film Title Here", "film"))
        for j in range(3):
            kb.add_entity(Entity(f"p{j}", f"Cast Member {j} Name", "person"))
            kb.add_fact("f", "has_cast_member", Value.entity(f"p{j}"))
        html = (
            "<html><body>"
            "<ul class='cast'><li>Cast Member 0 Name</li><li>Cast Member 1 Name</li>"
            "<li>Cast Member 2 Name</li></ul>"
            "<div class='mention'>Cast Member 0 Name</div>"
            "</body></html>"
        )
        doc = parse_html(html)
        annotator = RelationAnnotator(kb, CeresConfig())
        fields = doc.text_fields()
        mentions_p0 = [fields[0], fields[3]]  # list + stray mention
        co = [mentions_p0, [fields[1]], [fields[2]]]
        best = annotator.best_local_mentions(mentions_p0, co)
        assert best == [fields[0]]
