"""Tests for repro.ml.features (FeatureVectorizer)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ml.features import FeatureVectorizer

feature_dicts = st.lists(
    st.dictionaries(
        st.text(alphabet="abcdef", min_size=1, max_size=4),
        st.floats(min_value=-5, max_value=5, allow_nan=False),
        max_size=6,
    ),
    min_size=1,
    max_size=10,
)


class TestFeatureVectorizer:
    def test_fit_transform_shape(self):
        v = FeatureVectorizer()
        X = v.fit_transform([{"a": 1.0, "b": 2.0}, {"b": 1.0, "c": 3.0}])
        assert X.shape == (2, 3)

    def test_values_placed_correctly(self):
        v = FeatureVectorizer()
        X = v.fit_transform([{"a": 1.0, "b": 2.0}, {"c": 3.0}]).toarray()
        cols = v.vocabulary_
        assert X[0, cols["a"]] == 1.0
        assert X[0, cols["b"]] == 2.0
        assert X[1, cols["c"]] == 3.0
        assert X[1, cols["a"]] == 0.0

    def test_unseen_features_dropped(self):
        v = FeatureVectorizer()
        v.fit([{"a": 1.0}])
        X = v.transform([{"a": 1.0, "zz": 9.0}])
        assert X.shape == (1, 1)
        assert X.toarray()[0, 0] == 1.0

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            FeatureVectorizer().transform([{"a": 1.0}])

    def test_deterministic_vocabulary(self):
        samples = [{"z": 1.0, "a": 1.0, "m": 1.0}]
        v1 = FeatureVectorizer().fit(samples)
        v2 = FeatureVectorizer().fit(samples)
        assert v1.vocabulary_ == v2.vocabulary_
        assert v1.feature_names() == ["a", "m", "z"]

    def test_zero_values_not_stored(self):
        v = FeatureVectorizer()
        X = v.fit_transform([{"a": 0.0, "b": 1.0}])
        assert X.nnz == 1

    def test_empty_sample(self):
        v = FeatureVectorizer()
        X = v.fit_transform([{"a": 1.0}, {}])
        assert X.shape == (2, 1)
        assert X[1].nnz == 0

    @given(feature_dicts)
    def test_roundtrip_property(self, samples):
        v = FeatureVectorizer()
        X = v.fit_transform(samples).toarray()
        assert X.shape[0] == len(samples)
        for row, sample in enumerate(samples):
            for name, value in sample.items():
                assert np.isclose(X[row, v.vocabulary_[name]], value)

    @given(feature_dicts)
    def test_n_features_matches_distinct_names(self, samples):
        v = FeatureVectorizer().fit(samples)
        distinct = set()
        for sample in samples:
            distinct.update(sample)
        assert v.n_features == len(distinct)
