"""Integration tests asserting the paper's headline *shapes*.

The reproduction does not chase absolute numbers (the substrate is
synthetic), but the qualitative claims must hold, seeded and at modest
scale:

* CERES-Full achieves high extraction precision on clean movie sites;
* CERES-Full beats CERES-Topic on the complex IMDb person pages
  (Tables 5-6: +11% film F1, +72% person F1 in the paper);
* topic identification is near-perfect in precision (Table 7);
* hazard sites yield lower precision than clean sites (Table 8);
* confidence thresholding trades recall for precision (Figure 6).
"""

import pytest

from repro.core.config import CeresConfig
from repro.core.pipeline import CeresPipeline
from repro.baselines.ceres_topic import make_ceres_topic_pipeline
from repro.datasets import generate_imdb, generate_swde, seed_kb_for
from repro.evaluation.experiments.common import split_pages
from repro.evaluation.scoring import extraction_precision, node_level_scores
from repro.datasets.imdb import PERSON_PREDICATES
from repro.ml.metrics import PRF


@pytest.fixture(scope="module")
def imdb_runs():
    dataset = generate_imdb(0, n_films=30, n_people=24, n_episodes=10)
    kb = dataset.kb
    config = CeresConfig()
    train_pages, eval_pages = split_pages(dataset.person_pages, 0)
    outputs = {}
    for system, pipeline in (
        ("full", CeresPipeline(kb, config)),
        ("topic", make_ceres_topic_pipeline(kb, config)),
    ):
        result = pipeline.run(
            [p.document for p in train_pages], [p.document for p in eval_pages]
        )
        scores = node_level_scores(
            result.extractions, eval_pages, PERSON_PREDICATES, result.candidates
        )
        total = PRF()
        for score in scores.values():
            total += score
        outputs[system] = total
    return outputs


class TestHeadlineShapes:
    def test_full_beats_topic_on_persons(self, imdb_runs):
        full, topic = imdb_runs["full"], imdb_runs["topic"]
        assert full.precision > topic.precision
        assert full.f1 > topic.f1

    def test_full_precision_high(self, imdb_runs):
        assert imdb_runs["full"].precision > 0.9

    def test_movie_site_high_precision(self):
        dataset = generate_swde("movie", n_sites=2, pages_per_site=24, seed=1)
        kb = seed_kb_for(dataset, 1)
        site = dataset.sites[1]
        train_pages, eval_pages = split_pages(site.pages, 1)
        pipeline = CeresPipeline(kb, CeresConfig())
        result = pipeline.run(
            [p.document for p in train_pages], [p.document for p in eval_pages]
        )
        correct, total = extraction_precision(result.extractions, eval_pages)
        assert total > 20
        assert correct / total > 0.9

    def test_long_tail_discovery(self):
        """Extraction must cover entities the seed KB never contained."""
        dataset = generate_swde("movie", n_sites=2, pages_per_site=24, seed=1)
        kb = seed_kb_for(dataset, 1)
        site = dataset.sites[1]
        pipeline = CeresPipeline(kb, CeresConfig())
        docs = [p.document for p in site.pages]
        result = pipeline.run(docs, docs)
        kb_names = {e.name for e in kb.entities.values()}
        subjects = {e.subject for e in result.extractions}
        assert subjects - kb_names, "no new (long-tail) subjects extracted"
