"""Tests for repro.ml.cluster (agglomerative clustering)."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dom.xpath import parse_xpath
from repro.ml.cluster import (
    agglomerative_cluster,
    cluster_xpaths,
    pairwise_distance_matrix,
)


class TestPairwiseDistanceMatrix:
    def test_symmetric_zero_diagonal(self):
        items = ["a", "ab", "abc"]
        matrix = pairwise_distance_matrix(items, lambda a, b: abs(len(a) - len(b)))
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0)
        assert matrix[0, 2] == 2


class TestAgglomerativeCluster:
    def test_two_obvious_groups(self):
        # Points on a line: {0, 1, 2} and {10, 11, 12}.
        points = [0, 1, 2, 10, 11, 12]
        matrix = pairwise_distance_matrix(points, lambda a, b: abs(a - b))
        labels = agglomerative_cluster(matrix, 2)
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]
        assert labels[0] != labels[3]

    def test_n_clusters_one(self):
        points = [0, 5, 100]
        matrix = pairwise_distance_matrix(points, lambda a, b: abs(a - b))
        assert len(set(agglomerative_cluster(matrix, 1))) == 1

    def test_n_clusters_equals_n(self):
        points = [0, 5, 100]
        matrix = pairwise_distance_matrix(points, lambda a, b: abs(a - b))
        labels = agglomerative_cluster(matrix, 3)
        assert len(set(labels)) == 3

    def test_n_clusters_clipped(self):
        points = [0, 1]
        matrix = pairwise_distance_matrix(points, lambda a, b: abs(a - b))
        assert len(set(agglomerative_cluster(matrix, 99))) == 2
        assert len(set(agglomerative_cluster(matrix, 0))) == 1

    def test_empty(self):
        assert agglomerative_cluster(np.zeros((0, 0)), 2) == []

    def test_single_item(self):
        assert agglomerative_cluster(np.zeros((1, 1)), 1) == [0]

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            agglomerative_cluster(np.zeros((2, 3)), 1)

    def test_labels_contiguous(self):
        points = [0, 1, 50, 51, 100, 101]
        matrix = pairwise_distance_matrix(points, lambda a, b: abs(a - b))
        labels = agglomerative_cluster(matrix, 3)
        assert set(labels) == {0, 1, 2}

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.integers(0, 100), min_size=2, max_size=12),
        st.integers(1, 5),
    )
    def test_label_count_property(self, points, k):
        matrix = pairwise_distance_matrix(points, lambda a, b: abs(a - b))
        labels = agglomerative_cluster(matrix, k)
        expected = min(max(k, 1), len(points))
        assert len(set(labels)) == expected
        assert len(labels) == len(points)


class TestClusterXPaths:
    def test_index_drift_co_clusters(self):
        # Cast-list mentions drift in the final index; recommendation
        # mentions live in a structurally different region.
        cast = [
            parse_xpath(f"/html[1]/body[1]/div[1]/ul[1]/li[{i}]/a[1]") for i in (1, 2, 5, 9)
        ]
        recs = [
            parse_xpath(f"/html[1]/body[1]/aside[1]/div[2]/section[1]/p[{i}]/a[1]")
            for i in (1, 2)
        ]
        labels = cluster_xpaths(cast + recs, 2)
        assert len(set(labels[:4])) == 1
        assert len(set(labels[4:])) == 1
        assert labels[0] != labels[4]

    def test_largest_cluster_is_dominant_region(self):
        cast = [parse_xpath(f"/html[1]/div[1]/li[{i}]") for i in range(1, 8)]
        other = [parse_xpath("/html[1]/footer[1]/span[1]")]
        labels = cluster_xpaths(cast + other, 2)
        from collections import Counter

        largest = Counter(labels).most_common(1)[0][0]
        assert labels[0] == largest

    def test_identical_paths_same_label(self):
        path = parse_xpath("/html[1]/div[1]/span[1]")
        labels = cluster_xpaths([path, path, path], 2)
        assert len(set(labels)) == 1

    def test_empty(self):
        assert cluster_xpaths([], 2) == []

    def test_max_items_thinning(self):
        paths = [parse_xpath(f"/html[1]/div[1]/li[{i}]") for i in range(1, 60)]
        paths += [parse_xpath(f"/html[1]/aside[1]/p[{i}]/b[1]/a[1]") for i in range(1, 10)]
        labels = cluster_xpaths(paths, 2, max_items=20)
        assert len(labels) == len(paths)
        assert len(set(labels[:59])) == 1
        assert len(set(labels[59:])) == 1
        assert labels[0] != labels[-1]

    def test_engines_agree(self):
        """Batched distance matrix and pure-Python oracle label identically,
        including the thinning fallback's limit-seeded nearest-kept scan."""
        rng = random.Random(5)
        tags = ["div", "span", "li", "ul", "p"]
        for trial in range(25):
            paths = [
                tuple((rng.choice(tags), rng.randint(1, 6)) for _ in range(rng.randint(1, 8)))
                for _ in range(rng.randint(1, 50))
            ]
            k = rng.randint(1, 5)
            max_items = rng.choice([8, 15, 400])
            assert cluster_xpaths(paths, k, max_items=max_items) == cluster_xpaths(
                paths, k, max_items=max_items, engine="python"
            ), trial

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            cluster_xpaths([parse_xpath("/html[1]")], 1, engine="nope")


class TestDeterminism:
    def test_repeated_runs_identical(self):
        rng = random.Random(11)
        points = [rng.randint(0, 40) for _ in range(30)]
        matrix = pairwise_distance_matrix(points, lambda a, b: abs(a - b))
        first = agglomerative_cluster(matrix, 4)
        for _ in range(3):
            assert agglomerative_cluster(matrix, 4) == first

    def test_shuffled_input_same_partition(self):
        """Well-separated groups cluster to the same partition regardless
        of input order (pins the version-stamped heap's determinism)."""
        rng = random.Random(3)
        points = [0, 1, 2, 3, 100, 101, 102, 200, 201, 202, 203]
        order = list(range(len(points)))
        expected = None
        for _ in range(6):
            rng.shuffle(order)
            shuffled = [points[i] for i in order]
            matrix = pairwise_distance_matrix(shuffled, lambda a, b: abs(a - b))
            labels = agglomerative_cluster(matrix, 3)
            partition = frozenset(
                frozenset(shuffled[i] for i, l in enumerate(labels) if l == label)
                for label in set(labels)
            )
            if expected is None:
                expected = partition
            assert partition == expected

    def test_stale_entries_with_recreated_distances(self):
        """Averaging can recreate a distance a stale heap entry recorded;
        version counters must still merge correctly (the float-identity
        check this replaces could conflate such entries)."""
        # Symmetric configuration engineered so Lance-Williams updates
        # reproduce existing distances several times over.
        import numpy as np

        n = 8
        matrix = np.full((n, n), 4.0)
        np.fill_diagonal(matrix, 0.0)
        for i in range(0, n, 2):
            matrix[i, i + 1] = matrix[i + 1, i] = 2.0
        labels = agglomerative_cluster(matrix, 4)
        assert len(set(labels)) == 4
        for i in range(0, n, 2):
            assert labels[i] == labels[i + 1]
