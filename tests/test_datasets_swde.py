"""Tests for repro.datasets.swde (synthetic SWDE generator)."""

import pytest

from repro.datasets.swde import (
    VERTICAL_PREDICATES,
    VERTICALS,
    generate_swde,
    seed_kb_for,
)


class TestGeneration:
    def test_all_verticals_generate(self):
        for vertical in VERTICALS:
            dataset = generate_swde(vertical, n_sites=2, pages_per_site=6, seed=0)
            assert len(dataset.sites) == 2
            for site in dataset.sites:
                assert len(site.pages) == 6
                for page in site.pages:
                    _ = page.document  # alignment must hold

    def test_unknown_vertical_rejected(self):
        with pytest.raises(ValueError):
            generate_swde("nonexistent")

    def test_deterministic(self):
        a = generate_swde("movie", n_sites=2, pages_per_site=5, seed=9)
        b = generate_swde("movie", n_sites=2, pages_per_site=5, seed=9)
        assert [p.html for s in a.sites for p in s.pages] == [
            p.html for s in b.sites for p in s.pages
        ]

    def test_sites_have_distinct_templates(self):
        dataset = generate_swde("movie", n_sites=3, pages_per_site=4, seed=0)
        from repro.clustering.templates import page_signature
        signatures = [
            page_signature(site.pages[0].document) for site in dataset.sites
        ]
        assert signatures[0] != signatures[1] or signatures[1] != signatures[2]

    def test_pages_within_site_share_template(self):
        dataset = generate_swde("book", n_sites=1, pages_per_site=8, seed=0)
        from repro.clustering.templates import cluster_pages
        docs = [p.document for p in dataset.sites[0].pages]
        clusters = cluster_pages(docs)
        assert len(clusters) == 1

    def test_truth_covers_vertical_predicates(self):
        for vertical in VERTICALS:
            dataset = generate_swde(vertical, n_sites=1, pages_per_site=10, seed=0)
            seen = set()
            for page in dataset.sites[0].pages:
                seen.update(page.truth.objects.keys())
            for predicate in VERTICAL_PREDICATES[vertical]:
                assert predicate in seen, (vertical, predicate)

    def test_topic_metadata(self):
        dataset = generate_swde("nbaplayer", n_sites=1, pages_per_site=5, seed=0)
        for page in dataset.sites[0].pages:
            assert page.topic_entity_id is not None
            assert page.topic_name
            assert page.truth.objects["name"] == [page.topic_name]


class TestOverlapDesign:
    def test_book_overlap_decreasing(self):
        dataset = generate_swde("book", n_sites=10, pages_per_site=24, seed=0)
        site0_books = {p.topic_entity_id for p in dataset.sites[0].pages}
        overlaps = [
            sum(1 for p in site.pages if p.topic_entity_id in site0_books)
            for site in dataset.sites[1:]
        ]
        assert overlaps[0] > overlaps[-1]
        assert overlaps[-1] <= 5  # Figure 4: starved sites exist
        assert all(o >= 1 for o in overlaps)

    def test_nba_overlap_high(self):
        dataset = generate_swde("nbaplayer", n_sites=4, pages_per_site=20, seed=0)
        site0 = {p.topic_entity_id for p in dataset.sites[0].pages}
        for site in dataset.sites[1:]:
            overlap = sum(1 for p in site.pages if p.topic_entity_id in site0)
            assert overlap / len(site.pages) > 0.6


class TestSeedKB:
    def test_movie_kb_from_universe(self):
        dataset = generate_swde("movie", n_sites=2, pages_per_site=8, seed=0)
        kb = seed_kb_for(dataset, 0)
        assert len(kb) > 100
        # The paper's KB has no MPAA ratings.
        assert kb.predicate_counts().get("mpaa_rating", 0) == 0

    def test_other_kb_from_first_site(self):
        dataset = generate_swde("university", n_sites=3, pages_per_site=8, seed=0)
        kb = seed_kb_for(dataset, 0)
        # One subject entity per site-0 page.
        assert len(kb.entities) == len(dataset.sites[0].pages)
        names = {e.name for e in kb.entities.values()}
        assert names == {p.topic_name for p in dataset.sites[0].pages}

    def test_book_kb_small(self):
        dataset = generate_swde("book", n_sites=3, pages_per_site=8, seed=0)
        kb = seed_kb_for(dataset, 0)
        counts = kb.predicate_counts()
        assert counts["isbn13"] == 8
        assert counts["publisher"] == 8
