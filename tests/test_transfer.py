"""Cross-site transfer: xfer-only features, zero-shot serving, upgrades.

The contract under test: the ``xfer:`` namespace contains nothing
site-specific (so a model built from it transfers), the global model
serves sites the registry has never seen (tagged ``model="transfer"``),
and the background upgrader swaps the real per-site model in without
the service missing a request.
"""

import json
import threading

import pytest

from repro import obs
from repro.core.config import CeresConfig
from repro.core.pipeline import CeresPipeline
from repro.datasets import generate_swde, seed_kb_for
from repro.runtime import ExtractionService, ModelRegistry, RegistryError, SiteModel
from repro.transfer import (
    BackgroundUpgrader,
    TransferFeatureExtractor,
    collect_site_examples,
    predicate_tokens,
    shape_classes,
    train_global,
)


@pytest.fixture(scope="module")
def swde():
    dataset = generate_swde("movie", n_sites=4, pages_per_site=12, seed=7)
    return dataset, seed_kb_for(dataset, 7)


@pytest.fixture(scope="module")
def global_setup(swde):
    """A global model over sites 0-2; site 3 is the unseen site."""
    dataset, kb = swde
    config = CeresConfig()
    pools = [
        collect_site_examples(site.name, kb, site.documents(), config)
        for site in dataset.sites[:3]
    ]
    model = train_global(pools, kb.ontology.names(), config)
    return dataset, kb, config, model


def _train_site_model(kb, config, site_name, documents) -> SiteModel:
    pipeline = CeresPipeline(kb, config)
    result = pipeline.run(documents, documents)
    return SiteModel.from_result(site_name, config, result)


class TestTransferFeatures:
    def test_every_feature_is_xfer_namespaced(self, swde):
        dataset, kb = swde
        extractor = TransferFeatureExtractor(kb.ontology.names(), CeresConfig())
        document = dataset.sites[0].pages[0].document
        _, rows = extractor.page_features(document)
        assert rows
        names = {name for row in rows for name in row}
        assert names
        assert all(name.startswith("xfer:") for name in names)

    def test_predicate_tokens(self):
        assert predicate_tokens("directed_by") == frozenset({"directed", "by"})
        assert predicate_tokens("MPAA Rating") == frozenset({"mpaa", "rating"})
        assert predicate_tokens("") == frozenset()

    def test_shape_classes(self):
        assert "year" in shape_classes("1994")
        assert "numeric" in shape_classes("42")
        assert "iso-date" in shape_classes("2018-08-27")
        assert "label-colon" in shape_classes("Director:")
        assert "upper" in shape_classes("PG-13")

    def test_overlap_features_fire_on_predicate_names(self, swde):
        """A label node whose text shares tokens with an ontology
        predicate must produce xfer:pred features — the signal that
        replaces memorized site vocabulary."""
        dataset, kb = swde
        extractor = TransferFeatureExtractor(kb.ontology.names(), CeresConfig())
        names = set()
        for page in dataset.sites[0].pages[:4]:
            _, rows = extractor.page_features(page.document)
            for row in rows:
                names.update(n for n in row if n.startswith("xfer:pred|"))
        assert names  # genre/rating/... labels overlap predicate names


class TestNamespaceSeparation:
    """Satellite: no xfer: feature may embed site-specific vocabulary."""

    @pytest.fixture(scope="class")
    def compiled_vocabulary(self, swde):
        dataset, kb = swde
        site = dataset.sites[1]
        documents = site.documents()
        config = CeresConfig()
        pipeline = CeresPipeline(kb, config)
        result = pipeline.run(documents, documents)
        site_model = SiteModel.from_result(site.name, config, result)
        names: set[str] = set()
        for cluster in site_model.clusters:
            names.update(cluster.model.vectorizer.vocabulary_)
        assert names
        return site, documents, names

    def test_every_compiled_name_is_namespaced(self, compiled_vocabulary):
        _, _, names = compiled_vocabulary
        assert all(name.startswith(("site:", "xfer:")) for name in names)
        # Both namespaces are populated in a trained per-site model.
        assert any(name.startswith("site:") for name in names)
        assert any(name.startswith("xfer:") for name in names)

    def test_xfer_names_embed_no_xpath_step(self, compiled_vocabulary):
        """Raw XPath steps carry positional indices (``div[3]``) and
        separators — neither may leak into the transferable namespace."""
        _, documents, names = compiled_vocabulary
        xfer = [name for name in names if name.startswith("xfer:")]
        assert xfer
        steps = {
            step
            for document in documents[:4]
            for node in document.text_fields()
            for step in node.xpath.strip("/").split("/")
        }
        assert steps
        for name in xfer:
            assert "/" not in name and "[" not in name
            assert not any(step in name for step in steps if "[" in step)

    def test_xfer_names_embed_no_attr_value(self, compiled_vocabulary):
        """Site-specific attribute vocabulary (class names etc.) lives in
        site:s| features only; xfer fields must never equal one."""
        _, _, names = compiled_vocabulary
        site_values = {
            name.split("|")[2]
            for name in names
            if name.startswith("site:s|") and len(name.split("|")) >= 3
        }
        assert site_values  # e.g. "info-row", "cine-title"
        for name in names:
            if not name.startswith("xfer:"):
                continue
            fields = name.split(":", 1)[1].split("|")
            assert not (set(fields) & site_values), name

    def test_xfer_names_embed_no_hostname(self, compiled_vocabulary):
        site, _, names = compiled_vocabulary
        for name in names:
            if name.startswith("xfer:"):
                assert site.name not in name


class TestZeroShotServing:
    def test_unseen_site_served_from_global_model(
        self, global_setup, tmp_path
    ):
        dataset, kb, config, model = global_setup
        registry = ModelRegistry(tmp_path / "models")
        registry.save_global(model)
        service = ExtractionService(registry, transfer_fallback=True)
        unseen = dataset.sites[3]
        with obs.scoped(tracing=False, metrics=True) as (_, metrics):
            extractions = service.extract_pages(unseen.name, unseen.documents())
            snapshot = metrics.snapshot()
        assert extractions
        assert all(e.model == "transfer" for e in extractions)
        counters = snapshot["counters"]
        assert counters["transfer.requests"] == 1
        assert counters["transfer.pages"] == len(unseen.pages)
        assert counters["transfer.extractions"] == len(extractions)

    def test_fallback_off_still_raises(self, global_setup, tmp_path):
        dataset, _, _, model = global_setup
        registry = ModelRegistry(tmp_path / "models")
        registry.save_global(model)
        service = ExtractionService(registry)  # fallback not requested
        unseen = dataset.sites[3]
        with pytest.raises(RegistryError, match="no artifact"):
            service.extract_pages(unseen.name, unseen.documents())

    def test_fallback_without_global_model_raises(self, swde, tmp_path):
        dataset, _ = swde
        service = ExtractionService(
            tmp_path / "models", transfer_fallback=True
        )
        with pytest.raises(RegistryError, match="no artifact"):
            service.extract_pages(
                dataset.sites[3].name, dataset.sites[3].documents()
            )

    def test_fallback_never_masks_a_corrupt_artifact(
        self, global_setup, tmp_path
    ):
        """Absence is servable; damage is not — a torn artifact must
        surface even when the global model could have answered."""
        dataset, kb, config, model = global_setup
        registry = ModelRegistry(tmp_path / "models")
        registry.save_global(model)
        site = dataset.sites[0]
        registry.path_for(site.name).parent.mkdir(parents=True, exist_ok=True)
        registry.path_for(site.name).write_text("{ torn")
        service = ExtractionService(registry, transfer_fallback=True)
        with pytest.raises(RegistryError, match="corrupt"):
            service.extract_pages(site.name, site.documents())

    def test_in_memory_global_model(self, global_setup):
        """A registry-less service can still transfer-serve via
        set_global_model."""
        dataset, _, _, model = global_setup
        service = ExtractionService(transfer_fallback=True)
        service.set_global_model(model)
        unseen = dataset.sites[3]
        extractions = service.extract_pages(unseen.name, unseen.documents())
        assert extractions
        assert all(e.model == "transfer" for e in extractions)

    def test_extraction_rows_tag_transfer_model_only(self, global_setup):
        """Per-site rows stay byte-identical (no 'model' key); transfer
        rows carry model='transfer'."""
        from repro.runtime import extraction_row

        dataset, _, _, model = global_setup
        unseen = dataset.sites[3]
        documents = unseen.documents()
        extractions = model.extract(documents)
        assert extractions
        row = extraction_row(extractions[0], documents[extractions[0].page_index].url)
        assert row["model"] == "transfer"
        site_like = json.loads(json.dumps(row))
        # A per-site extraction (model="site") must not emit the key.
        extractions[0].model = "site"
        try:
            plain = extraction_row(
                extractions[0], documents[extractions[0].page_index].url
            )
        finally:
            extractions[0].model = "transfer"
        assert "model" not in plain
        assert site_like.keys() - plain.keys() == {"model"}


class TestBackgroundUpgrade:
    def test_upgrade_swaps_in_per_site_model(self, global_setup, tmp_path):
        dataset, kb, config, model = global_setup
        registry = ModelRegistry(tmp_path / "models")
        registry.save_global(model)
        service = ExtractionService(registry, transfer_fallback=True)
        unseen = dataset.sites[3]
        documents = unseen.documents()

        trained = threading.Event()

        def train_site(site, docs):
            site_model = _train_site_model(kb, config, site, docs)
            trained.set()
            return site_model

        upgrader = BackgroundUpgrader(service, train_site)
        service.upgrade_hook = upgrader
        try:
            first = service.extract_pages(unseen.name, documents)
            assert all(e.model == "transfer" for e in first)
            assert trained.wait(timeout=60)
            upgrader.join()
            assert [r.ok for r in upgrader.reports] == [True]
            # The artifact was persisted and the live model swapped.
            assert registry.has(unseen.name)
            second = service.extract_pages(unseen.name, documents)
            assert second
            assert all(e.model == "site" for e in second)
        finally:
            upgrader.close()

    def test_each_site_upgrades_at_most_once(self, global_setup, tmp_path):
        dataset, kb, config, model = global_setup
        registry = ModelRegistry(tmp_path / "models")
        registry.save_global(model)
        service = ExtractionService(registry, transfer_fallback=True)
        unseen = dataset.sites[3]
        documents = unseen.documents()[:2]
        calls: list[str] = []

        def train_site(site, docs):
            calls.append(site)
            return _train_site_model(kb, config, site, docs)

        upgrader = BackgroundUpgrader(service, train_site)
        try:
            assert upgrader.submit(unseen.name, documents)
            assert not upgrader.submit(unseen.name, documents)  # dedup
            upgrader.join()
            assert calls == [unseen.name]
        finally:
            upgrader.close()

    def test_failed_upgrade_reports_and_allows_retry(
        self, global_setup, tmp_path
    ):
        dataset, _, _, model = global_setup
        registry = ModelRegistry(tmp_path / "models")
        registry.save_global(model)
        service = ExtractionService(registry, transfer_fallback=True)
        unseen = dataset.sites[3]
        documents = unseen.documents()[:2]

        def train_site(site, docs):
            raise RuntimeError("boom")

        upgrader = BackgroundUpgrader(service, train_site)
        try:
            assert upgrader.submit(unseen.name, documents)
            upgrader.join()
            assert [r.ok for r in upgrader.reports] == [False]
            assert "boom" in upgrader.reports[0].error
            # Failure clears the dedup guard so a later request retries.
            assert upgrader.submit(unseen.name, documents)
            upgrader.join()
        finally:
            upgrader.close()


class TestDeletedArtifact:
    """Satellite: eviction + mid-run artifact deletion must say what
    happened, not claim the site never existed."""

    def test_evicted_then_deleted_site_names_the_cause(self, swde, tmp_path):
        dataset, kb = swde
        config = CeresConfig()
        site = dataset.sites[0]
        documents = site.documents()
        registry = ModelRegistry(tmp_path / "models")
        registry.save(_train_site_model(kb, config, site.name, documents))
        service = ExtractionService(registry, max_resident_sites=1)
        assert service.extract_pages(site.name, documents)
        service.evict(site.name)
        assert registry.delete(site.name)
        with pytest.raises(RegistryError) as excinfo:
            service.extract_pages(site.name, documents)
        message = str(excinfo.value)
        assert "deleted" in message
        assert site.name in message
        assert "transfer fallback" in message or "--transfer-fallback" in message

    def test_never_served_site_keeps_the_plain_error(self, swde, tmp_path):
        dataset, _ = swde
        service = ExtractionService(ModelRegistry(tmp_path / "models"))
        with pytest.raises(RegistryError, match="no artifact"):
            service.extract_pages(
                dataset.sites[0].name, dataset.sites[0].documents()
            )


class TestLosoEvaluation:
    def test_loso_runs_every_fold(self, swde):
        from repro.evaluation import format_loso_table, loso_folds

        dataset, kb = swde
        folds = loso_folds(dataset, kb, CeresConfig())
        assert [fold.site for fold in folds] == [
            site.name for site in dataset.sites
        ]
        assert all(fold.n_train_sites == len(dataset.sites) - 1 for fold in folds)
        total = sum(fold.total for fold in folds)
        correct = sum(fold.correct for fold in folds)
        assert total > 0
        assert correct / total >= 0.75  # zero-shot stays high-precision
        table = format_loso_table(folds)
        assert "micro-avg" in table
        for fold in folds:
            assert fold.site in table
