"""Tests for repro.core.extraction.{trainer,extractor} (Sections 4.2-4.3)."""

import pytest

from repro.core.annotation.examples import TrainingExample
from repro.core.annotation.types import AnnotatedPage, Annotation
from repro.core.config import CeresConfig
from repro.core.extraction.extractor import CeresExtractor
from repro.core.extraction.trainer import CeresTrainer
from repro.dom.parser import parse_html
from repro.kb.ontology import NAME_PREDICATE, OTHER_LABEL


def site_page(i: int) -> str:
    return (
        "<html><body><div class='main'>"
        f"<h1 class='title'>Title Number {i}</h1>"
        f"<div class='row'><span class='label'>Director:</span>"
        f"<span class='dval'>Director {i}</span></div>"
        f"<div class='row'><span class='label'>Genre:</span>"
        f"<span class='gval'>Genre {i % 3}</span></div>"
        f"<p class='blurb'>Some free text {i}</p>"
        "</div></body></html>"
    )


def build_model(n_pages: int = 8):
    docs = [parse_html(site_page(i)) for i in range(n_pages)]
    examples = []
    for page_index, doc in enumerate(docs):
        fields = doc.text_fields()
        title = fields[0]
        director = next(f for f in fields if f.text.startswith("Director "))
        genre = next(f for f in fields if f.text.startswith("Genre "))
        blurb = next(f for f in fields if f.text.startswith("Some free"))
        label_a = next(f for f in fields if f.text == "Director:")
        examples.extend(
            [
                TrainingExample(page_index, title, NAME_PREDICATE),
                TrainingExample(page_index, director, "directed_by"),
                TrainingExample(page_index, genre, "genre"),
                TrainingExample(page_index, blurb, OTHER_LABEL),
                TrainingExample(page_index, label_a, OTHER_LABEL),
            ]
        )
    model = CeresTrainer(CeresConfig()).train(examples, docs)
    return model, docs


class TestTrainer:
    def test_labels_learned(self):
        model, _ = build_model()
        assert set(model.labels) == {NAME_PREDICATE, "directed_by", "genre", OTHER_LABEL}

    def test_empty_examples_raise(self):
        with pytest.raises(ValueError):
            CeresTrainer(CeresConfig()).train([], [])

    def test_predict_proba_shape(self):
        model, docs = build_model()
        nodes = docs[0].text_fields()
        probabilities = model.predict_proba_for_nodes(nodes, docs[0])
        assert probabilities.shape == (len(nodes), len(model.labels))


class TestExtractor:
    def test_extracts_unseen_page(self):
        model, _ = build_model()
        extractor = CeresExtractor(model, CeresConfig())
        new_doc = parse_html(site_page(99))
        extractions = extractor.extract_page(new_doc)
        by_predicate = {e.predicate: e.object for e in extractions}
        assert by_predicate.get("directed_by") == "Director 99"
        assert by_predicate.get("genre") == "Genre 0"
        for e in extractions:
            assert e.subject == "Title Number 99"

    def test_subject_is_name_node(self):
        model, _ = build_model()
        extractor = CeresExtractor(model, CeresConfig())
        candidates = extractor.candidates_for_page(parse_html(site_page(5)))
        assert candidates.subject == "Title Number 5"
        assert candidates.name_confidence > 0.5

    def test_threshold_filters(self):
        model, _ = build_model()
        extractor = CeresExtractor(model, CeresConfig())
        doc = parse_html(site_page(3))
        low = extractor.extract_page(doc, threshold=0.0)
        high = extractor.extract_page(doc, threshold=0.999999)
        assert len(high) <= len(low)

    def test_no_name_no_extractions(self):
        model, _ = build_model()
        candidates = extractor_candidates_without_name(model)
        assert candidates.extractions(0.5) == []

    def test_extract_multiple_pages(self):
        model, docs = build_model()
        extractor = CeresExtractor(model, CeresConfig())
        extractions = extractor.extract(docs[:3])
        assert {e.page_index for e in extractions} == {0, 1, 2}

    def test_candidates_rethresholding_consistent(self):
        model, docs = build_model()
        extractor = CeresExtractor(model, CeresConfig())
        candidates = extractor.candidates(docs[:4])
        direct = extractor.extract(docs[:4], threshold=0.7)
        via_candidates = [
            e for page in candidates for e in page.extractions(0.7)
        ]
        assert len(direct) == len(via_candidates)

    def test_empty_page(self):
        model, _ = build_model()
        extractor = CeresExtractor(model, CeresConfig())
        doc = parse_html("<html><body></body></html>")
        assert extractor.extract_page(doc) == []


def extractor_candidates_without_name(model):
    """Candidates object built from a page, with the name forced away."""
    from repro.core.extraction.extractor import PageCandidates

    return PageCandidates(page_index=0, subject=None, name_confidence=0.0,
                          candidates=[])
