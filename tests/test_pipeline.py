"""End-to-end tests for repro.core.pipeline on generated sites."""

import pytest

from repro.core.config import CeresConfig
from repro.core.pipeline import CeresPipeline
from repro.datasets import generate_swde, seed_kb_for


@pytest.fixture(scope="module")
def movie_site():
    dataset = generate_swde("movie", n_sites=2, pages_per_site=24, seed=3)
    kb = seed_kb_for(dataset, 3)
    site = dataset.sites[1]
    return kb, site


class TestPipelineEndToEnd:
    def test_full_run(self, movie_site):
        kb, site = movie_site
        pages = site.pages
        train, evaluation = pages[:12], pages[12:]
        pipeline = CeresPipeline(kb, CeresConfig())
        result = pipeline.run(
            [p.document for p in train], [p.document for p in evaluation]
        )
        assert result.annotated_pages, "no pages were annotated"
        assert result.extractions, "no extractions produced"
        # Every extraction references an eval page and carries confidence.
        for extraction in result.extractions:
            assert 0 <= extraction.page_index < len(evaluation)
            assert 0.5 <= extraction.confidence <= 1.0
            assert extraction.subject
            assert extraction.object

    def test_topic_accuracy(self, movie_site):
        kb, site = movie_site
        train = site.pages[:12]
        pipeline = CeresPipeline(kb, CeresConfig())
        result = pipeline.annotate([p.document for p in train])
        assert result.topics
        for page_index, topic in result.topics.items():
            assert topic.entity_id == train[page_index].topic_entity_id

    def test_extraction_precision_high(self, movie_site):
        kb, site = movie_site
        pages = site.pages
        train, evaluation = pages[:12], pages[12:]
        pipeline = CeresPipeline(kb, CeresConfig())
        result = pipeline.run(
            [p.document for p in train], [p.document for p in evaluation]
        )
        correct = 0
        for extraction in result.extractions:
            emission = evaluation[extraction.page_index].emission_for_node(
                extraction.node
            )
            if emission is not None and emission.predicate == extraction.predicate:
                correct += 1
        assert correct / len(result.extractions) > 0.9

    def test_threshold_monotonicity(self, movie_site):
        kb, site = movie_site
        pages = site.pages
        pipeline = CeresPipeline(kb, CeresConfig())
        result = pipeline.run([p.document for p in pages[:12]],
                              [p.document for p in pages[12:]])
        counts = [len(result.extractions_at(t)) for t in (0.5, 0.7, 0.9, 0.99)]
        assert counts == sorted(counts, reverse=True)

    def test_annotation_count_property(self, movie_site):
        kb, site = movie_site
        pipeline = CeresPipeline(kb, CeresConfig())
        result = pipeline.annotate([p.document for p in site.pages[:12]])
        assert result.annotation_count == sum(
            len(p.annotations) for p in result.annotated_pages
        )
        assert result.annotation_count >= 3 * len(result.annotated_pages)

    def test_no_kb_overlap_no_output(self, movie_site):
        kb, _ = movie_site
        # Pages from a different universe (different seed): no KB overlap.
        other = generate_swde("movie", n_sites=1, pages_per_site=10, seed=91)
        docs = [p.document for p in other.sites[0].pages]
        pipeline = CeresPipeline(kb, CeresConfig())
        result = pipeline.run(docs, docs)
        # Either nothing annotated or (rare spurious topic) nothing extractable.
        assert len(result.annotated_pages) <= 1

    def test_without_template_clustering(self, movie_site):
        kb, site = movie_site
        config = CeresConfig(use_template_clustering=False)
        pipeline = CeresPipeline(kb, config)
        docs = [p.document for p in site.pages[:12]]
        result = pipeline.run(docs, docs)
        assert len(result.cluster_results) == 1
        assert result.extractions

    def test_min_cluster_size_skips_small_inputs(self, movie_site):
        kb, site = movie_site
        config = CeresConfig(min_cluster_size=100)
        pipeline = CeresPipeline(kb, config)
        docs = [p.document for p in site.pages[:12]]
        result = pipeline.run(docs, docs)
        assert result.cluster_results == []
        assert result.extractions == []

    def test_skipped_clusters_are_recorded(self, movie_site):
        """Pages dropped with undersized clusters must leave a trace."""
        kb, site = movie_site
        config = CeresConfig(min_cluster_size=100)
        pipeline = CeresPipeline(kb, config)
        docs = [p.document for p in site.pages[:12]]
        result = pipeline.annotate(docs)
        assert result.skipped_clusters >= 1
        assert result.skipped_page_indices == list(range(12))
        assert result.skipped_pages == 12

    def test_no_skips_on_healthy_site(self, movie_site):
        kb, site = movie_site
        pipeline = CeresPipeline(kb, CeresConfig())
        result = pipeline.annotate([p.document for p in site.pages[:12]])
        assert result.skipped_clusters == 0
        assert result.skipped_page_indices == []

    def test_extract_without_models_yields_nothing(self, movie_site):
        kb, site = movie_site
        pipeline = CeresPipeline(kb, CeresConfig())
        result = pipeline.annotate([p.document for p in site.pages[:6]])
        # No train() call: extraction must be a no-op.
        extracted = pipeline.extract(result, [p.document for p in site.pages[6:8]])
        assert extracted.extractions == []
