"""The resilient serving tier: breakers, backpressure, deadlines,
micro-batching, and graceful drain.

The HTTP tests run a real :class:`ServingServer` on an ephemeral port
per test — the threading, admission, and exactly-once-response
machinery is the thing under test, so nothing is mocked below the
:class:`ExtractionService` boundary.
"""

import http.client
import json
import threading
import time

import pytest

from repro import obs
from repro.core.config import CeresConfig
from repro.core.pipeline import CeresPipeline
from repro.datasets import generate_swde, seed_kb_for
from repro.runtime import ExtractionService, SiteModel
from repro.runtime.resilience import Deadline
from repro.serving import (
    CLOSED,
    HALF_OPEN,
    OFFER_ACCEPTED,
    OFFER_CLOSED,
    OFFER_FULL,
    OPEN,
    AdmissionQueue,
    BreakerBoard,
    CircuitBreaker,
    PendingRequest,
    ServingConfig,
    ServingServer,
)
from repro.testing.faults import FaultPlan, FaultSpec, active
from repro.transfer import collect_site_examples, train_global


# ---------------------------------------------------------------------------
# fixtures


@pytest.fixture(scope="module")
def trained_world():
    """One trained site, its pages' raw HTML, and a global model."""
    dataset = generate_swde("movie", n_sites=2, pages_per_site=12, seed=11)
    kb = seed_kb_for(dataset, 11)
    site = dataset.sites[1]
    documents = [page.document for page in site.pages]
    config = CeresConfig()
    pipeline = CeresPipeline(kb, config)
    result = pipeline.run(documents, documents)
    assert result.extractions
    donor = dataset.sites[0]
    pool = collect_site_examples(
        donor.name, kb, [page.document for page in donor.pages], config
    )
    predicates = sorted(
        {example.label for example in pool.examples if example.label != "OTHER"}
    )
    global_model = train_global([pool], predicates, config=config)
    return {
        "site": site.name,
        "config": config,
        "site_model": SiteModel.from_result(site.name, config, result),
        "documents": documents,
        "html": [page.html for page in site.pages],
        "global_model": global_model,
    }


@pytest.fixture()
def service(trained_world):
    service = ExtractionService()
    service.add_site_model(trained_world["site_model"])
    service.set_global_model(trained_world["global_model"])
    return service


@pytest.fixture()
def serving(request, service):
    """A running server on an ephemeral port; torn down hard after the
    test.  Parametrize knobs via ``@pytest.mark.parametrize('serving',
    [dict(...)], indirect=True)``."""
    knobs = dict(
        port=0, workers=2, request_deadline=10.0, retry_after=0.5,
        drain_timeout=2.0,
    )
    knobs.update(getattr(request, "param", {}))
    config = ServingConfig(**knobs)
    obs.enable(tracing=False, metrics=True)
    server = ServingServer(service, config)
    server.start()
    yield server
    server.stop(timeout=10)
    obs.disable()


def _post(port, payload, timeout=30):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    body = payload if isinstance(payload, (str, bytes)) else json.dumps(payload)
    conn.request("POST", "/extract", body=body)
    response = conn.getresponse()
    data = json.loads(response.read())
    headers = dict(response.getheaders())
    conn.close()
    return response.status, data, headers


def _get(port, path):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    conn.request("GET", path)
    response = conn.getresponse()
    data = json.loads(response.read())
    status = response.status
    conn.close()
    return status, data


def _request(world, n_pages=1):
    return {
        "site": world["site"],
        "pages": [
            {"html": html, "url": f"page-{index}"}
            for index, html in enumerate(world["html"][:n_pages])
        ],
    }


# ---------------------------------------------------------------------------
# circuit breaker (unit, fake clock)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCircuitBreaker:
    def test_closed_until_consecutive_permanent_failures(self):
        breaker = CircuitBreaker(failures=3, clock=FakeClock())
        assert breaker.route() == "primary"
        assert breaker.record_failure("permanent") is False
        assert breaker.record_failure("permanent") is False
        assert breaker.phase == CLOSED
        assert breaker.record_failure("permanent") is True
        assert breaker.phase == OPEN
        assert breaker.route() == "fallback"

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failures=2, clock=FakeClock())
        breaker.record_failure("permanent")
        breaker.record_success()
        breaker.record_failure("permanent")
        assert breaker.phase == CLOSED  # streak broken: still closed

    @pytest.mark.parametrize("category", ["transient", "overload"])
    def test_non_permanent_failures_never_trip(self, category):
        breaker = CircuitBreaker(failures=1, clock=FakeClock())
        for _ in range(10):
            assert breaker.record_failure(category) is False
        assert breaker.phase == CLOSED

    def test_cooldown_gates_the_half_open_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failures=1, cooldown=30.0, clock=clock)
        breaker.record_failure("permanent")
        assert breaker.route() == "fallback"  # cooling down
        clock.advance(31.0)
        assert breaker.route() == "primary"  # the probe
        assert breaker.phase == HALF_OPEN
        assert breaker.route() == "fallback"  # one probe at a time

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failures=1, cooldown=1.0, clock=clock)
        breaker.record_failure("permanent")
        clock.advance(2.0)
        assert breaker.route() == "primary"
        breaker.record_success()
        assert breaker.phase == CLOSED
        assert breaker.route() == "primary"

    def test_probe_permanent_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failures=1, cooldown=1.0, clock=clock)
        breaker.record_failure("permanent")
        clock.advance(2.0)
        assert breaker.route() == "primary"
        assert breaker.record_failure("permanent") is True
        assert breaker.phase == OPEN
        assert breaker.route() == "fallback"  # cooldown restarted

    def test_probe_transient_failure_releases_the_slot(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failures=1, cooldown=1.0, clock=clock)
        breaker.record_failure("permanent")
        clock.advance(2.0)
        assert breaker.route() == "primary"
        assert breaker.record_failure("transient") is False
        assert breaker.phase == HALF_OPEN
        assert breaker.route() == "primary"  # next request may probe again

    def test_multi_probe_closing(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failures=1, cooldown=1.0, probes=2, clock=clock
        )
        breaker.record_failure("permanent")
        clock.advance(2.0)
        assert breaker.route() == "primary"
        breaker.record_success()
        assert breaker.phase == HALF_OPEN  # one success is not enough
        assert breaker.route() == "primary"
        breaker.record_success()
        assert breaker.phase == CLOSED

    def test_snapshot_counts_openings(self):
        breaker = CircuitBreaker(failures=1, clock=FakeClock())
        breaker.record_failure("permanent")
        snapshot = breaker.snapshot()
        assert snapshot["phase"] == OPEN
        assert snapshot["opened_total"] == 1

    def test_board_lazily_creates_and_snapshots(self):
        board = BreakerBoard(failures=1)
        assert board.for_site("a") is board.for_site("a")
        board.for_site("a").record_failure("permanent")
        snapshot = board.snapshot()
        assert snapshot["a"]["phase"] == OPEN


# ---------------------------------------------------------------------------
# admission queue (unit)


def _pending(site, n_docs=1, threshold=None, seconds=None):
    return PendingRequest(
        site=site,
        documents=[object()] * n_docs,
        threshold=threshold,
        deadline=Deadline(seconds),
    )


class TestAdmissionQueue:
    def test_offer_verdicts(self):
        queue = AdmissionQueue(max_depth=2)
        assert queue.offer(_pending("a")) == OFFER_ACCEPTED
        assert queue.offer(_pending("a")) == OFFER_ACCEPTED
        assert queue.offer(_pending("a")) == OFFER_FULL
        queue.begin_drain()
        assert queue.offer(_pending("a")) == OFFER_CLOSED

    def test_take_batch_groups_same_site_and_threshold(self):
        queue = AdmissionQueue(max_depth=10)
        first = _pending("a", 2)
        second = _pending("a", 3)
        other_site = _pending("b", 1)
        other_threshold = _pending("a", 1, threshold=0.9)
        for request in (first, second, other_site, other_threshold):
            queue.offer(request)
        site, batch = queue.take_batch()
        assert site == "a"
        assert batch == [first, second]  # same (site, threshold) only

    def test_batch_page_cap(self):
        queue = AdmissionQueue(max_depth=10, batch_max_pages=4)
        first = _pending("a", 3)
        second = _pending("a", 3)  # 3 + 3 > 4: must wait for batch two
        queue.offer(first)
        queue.offer(second)
        _, batch = queue.take_batch()
        assert batch == [first]

    def test_oversized_single_request_still_ships(self):
        queue = AdmissionQueue(max_depth=10, batch_max_pages=4)
        big = _pending("a", 9)
        queue.offer(big)
        _, batch = queue.take_batch()
        assert batch == [big]

    def test_per_site_serialization(self):
        queue = AdmissionQueue(max_depth=10)
        queue.offer(_pending("a"))
        queue.offer(_pending("a"))
        queue.offer(_pending("b"))
        site_one, _ = queue.take_batch()
        assert site_one == "a"
        # "a" is claimed: the next batch must be "b", even though another
        # "a" request arrived first.
        queue.offer(_pending("a"))
        site_two, _ = queue.take_batch()
        assert site_two == "b"
        queue.finish_site("a")
        site_three, _ = queue.take_batch()
        assert site_three == "a"

    def test_stop_drains_then_signals_exit(self):
        queue = AdmissionQueue(max_depth=10)
        queue.offer(_pending("a"))
        queue.stop()
        assert queue.take_batch() is not None  # queued work still flows
        assert queue.take_batch() is None  # then workers are told to exit

    def test_wait_idle_and_abort(self):
        queue = AdmissionQueue(max_depth=10)
        queue.offer(_pending("a"))
        assert queue.wait_idle(0.05) is False
        aborted = queue.abort_pending()
        assert len(aborted) == 1
        assert queue.wait_idle(0.05) is True

    def test_exactly_once_fulfill_vs_forsake(self):
        request = _pending("a")
        assert request.fulfill(("ok", [], "site")) is True
        assert request.forsake() is False  # worker won
        late = _pending("a")
        assert late.forsake() is True
        assert late.fulfill(("ok", [], "site")) is False  # waiter won


# ---------------------------------------------------------------------------
# HTTP integration


class TestHttpServing:
    def test_round_trip_matches_direct_service(
        self, serving, service, trained_world
    ):
        world = trained_world
        status, data, _ = _post(serving.port, _request(world, n_pages=12))
        assert status == 200
        assert data["model"] == "site"
        assert data["pages"] == 12
        direct = service.extract_pages(world["site"], world["documents"])
        assert data["extractions"] == len(direct)
        row = data["rows"][0]
        assert set(row) >= {
            "site", "page", "subject", "predicate", "object", "confidence",
        }

    def test_concurrent_single_page_requests_all_answered(
        self, serving, trained_world
    ):
        results = []
        lock = threading.Lock()

        def one(index):
            payload = {
                "site": trained_world["site"],
                "pages": [
                    {"html": trained_world["html"][index], "url": f"p{index}"}
                ],
            }
            status, data, _ = _post(serving.port, payload)
            with lock:
                results.append((index, status, data))

        threads = [
            threading.Thread(target=one, args=(index,)) for index in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(r[1] for r in results) == [200] * 8
        for index, _, data in results:
            for row in data["rows"]:
                assert row["page"] == f"p{index}"  # no cross-request bleed

    def test_health_endpoints(self, serving):
        assert _get(serving.port, "/healthz") == (200, {"status": "alive"})
        status, data = _get(serving.port, "/readyz")
        assert (status, data["status"]) == (200, "ready")
        status, data = _get(serving.port, "/stats")
        assert status == 200
        assert data["phase"] == "ready"
        assert "queue" in data and "breakers" in data and "metrics" in data

    def test_unknown_endpoint_404(self, serving):
        status, _ = _get(serving.port, "/nope")
        assert status == 404

    def test_malformed_json_400(self, serving):
        status, data, _ = _post(serving.port, "{nope")
        assert status == 400
        assert "JSON" in data["error"]

    def test_missing_site_400(self, serving):
        status, _, _ = _post(serving.port, {"pages": [{"html": "<p>x</p>"}]})
        assert status == 400

    def test_pages_required_400(self, serving, trained_world):
        status, _, _ = _post(serving.port, {"site": trained_world["site"]})
        assert status == 400

    def test_depth_bomb_422_permanent(self, serving, trained_world):
        bomb = "<div>" * 400 + "x" + "</div>" * 400
        status, data, _ = _post(
            serving.port,
            {"site": trained_world["site"], "pages": [{"html": bomb}]},
        )
        assert status == 422
        assert data["category"] == "permanent"

    def test_unknown_site_is_permanent_500(self, serving):
        status, data, _ = _post(
            serving.port,
            {"site": "never-trained", "pages": [{"html": "<p>x</p>"}]},
        )
        assert status == 500
        assert data["category"] == "permanent"

    @pytest.mark.parametrize(
        "serving",
        [dict(workers=1, max_queue_depth=1, request_deadline=1.0)],
        indirect=True,
    )
    def test_full_queue_sheds_429_with_retry_after(
        self, serving, trained_world
    ):
        plan = FaultPlan(
            [
                FaultSpec(
                    "serving.batch", site=trained_world["site"],
                    action="hang", delay=30.0, times=1,
                )
            ]
        )
        with active(plan):
            payload = _request(trained_world)
            background = []

            def fire():
                background.append(_post(serving.port, payload))

            wedged = threading.Thread(target=fire)
            wedged.start()
            time.sleep(0.3)  # let the worker claim it and hang
            queued = threading.Thread(target=fire)
            queued.start()
            time.sleep(0.2)
            status, data, headers = _post(serving.port, payload)
            assert status == 429
            assert data["category"] == "overload"
            assert headers.get("Retry-After") == "1"
            wedged.join()
            queued.join()
        # Wedged and queued requests hit the 1s deadline: 504, exactly once.
        assert sorted(result[0] for result in background) == [504, 504]
        counters = serving.stats_payload()["metrics"]["counters"]
        assert counters["serving.shed"] == 1
        assert counters["serving.accepted"] == 2

    def test_client_deadline_can_only_shrink(self, serving, trained_world):
        payload = dict(_request(trained_world), deadline=120.0)
        status, _, _ = _post(serving.port, payload)
        assert status == 200  # capped at the server budget, still served

    def test_breaker_opens_then_serves_transfer_then_recloses(
        self, serving, trained_world
    ):
        site = trained_world["site"]
        serving.breakers._cooldown = 0.3  # fast half-open for the test
        plan = FaultPlan(
            [FaultSpec("serving.batch", site=site, action="raise", times=3)]
        )
        payload = _request(trained_world)
        with active(plan):
            for _ in range(3):
                status, data, _ = _post(serving.port, payload)
                assert status == 500
                assert data["category"] == "permanent"
            breaker = serving.breakers.for_site(site)
            assert breaker.phase == OPEN
            # Open: requests degrade to the zero-shot transfer model.
            status, data, _ = _post(serving.port, payload)
            assert status == 200
            assert data["model"] == "transfer"
            for row in data["rows"]:
                assert row["model"] == "transfer"
            time.sleep(0.4)  # cooldown elapses; faults are exhausted
            status, data, _ = _post(serving.port, payload)
            assert status == 200
            assert data["model"] == "site"
            assert breaker.phase == CLOSED
        counters = serving.stats_payload()["metrics"]["counters"]
        assert counters["serving.breaker_opened"] == 1
        assert counters["serving.fallback_requests"] == 1

    def test_service_level_transfer_fallback_labels_response(
        self, trained_world
    ):
        """An unseen site served zero-shot by a --transfer-fallback
        service must say model="transfer" at the top level too, even
        though it went down the breaker's primary route."""
        service = ExtractionService(transfer_fallback=True)
        service.add_site_model(trained_world["site_model"])
        service.set_global_model(trained_world["global_model"])
        obs.enable(tracing=False, metrics=True)
        server = ServingServer(service, ServingConfig(port=0, workers=1))
        server.start()
        try:
            status, data, _ = _post(server.port, {
                "site": "never-seen.example",
                "pages": [{"html": trained_world["html"][0], "url": "p0"}],
            })
        finally:
            server.stop()
            obs.disable()
        assert status == 200
        assert data["model"] == "transfer"
        assert all(row["model"] == "transfer" for row in data["rows"])

    def test_transient_faults_never_open_the_breaker(
        self, serving, trained_world
    ):
        site = trained_world["site"]
        plan = FaultPlan(
            [
                FaultSpec(
                    "serving.batch", site=site,
                    action="raise-transient", times=5,
                )
            ]
        )
        payload = _request(trained_world)
        with active(plan):
            for _ in range(5):
                status, data, _ = _post(serving.port, payload)
                assert status == 503
                assert data["category"] == "transient"
        assert serving.breakers.for_site(site).phase == CLOSED
        status, data, _ = _post(serving.port, payload)
        assert status == 200
        assert data["model"] == "site"

    def test_overload_faults_map_to_429(self, serving, trained_world):
        site = trained_world["site"]
        plan = FaultPlan(
            [
                FaultSpec(
                    "serving.batch", site=site,
                    action="raise-overload", times=1,
                )
            ]
        )
        with active(plan):
            status, data, headers = _post(
                serving.port, _request(trained_world)
            )
        assert status == 429
        assert data["category"] == "overload"
        assert "Retry-After" in headers
        assert serving.breakers.for_site(site).phase == CLOSED

    @pytest.mark.parametrize(
        "serving", [dict(batch_linger=0.15, workers=1)], indirect=True
    )
    def test_cross_request_micro_batching(self, serving, trained_world):
        """Concurrent single-page requests for one site score as one
        merged batch when linger is on."""
        results = []
        lock = threading.Lock()

        def one(index):
            payload = {
                "site": trained_world["site"],
                "pages": [
                    {"html": trained_world["html"][index], "url": f"p{index}"}
                ],
            }
            outcome = _post(serving.port, payload)
            with lock:
                results.append(outcome)

        threads = [
            threading.Thread(target=one, args=(index,)) for index in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(result[0] == 200 for result in results)
        histograms = serving.stats_payload()["metrics"]["histograms"]
        batched = histograms["serving.batch_pages"]
        assert batched["max"] >= 2  # at least one merged batch
        counters = serving.stats_payload()["metrics"]["counters"]
        assert counters["serving.batches"] < 4


class TestDrain:
    @pytest.mark.parametrize(
        "serving", [dict(workers=1, batch_linger=0.05)], indirect=True
    )
    def test_drain_answers_every_accepted_request_exactly_once(
        self, serving, trained_world
    ):
        """SIGTERM semantics: accepted work flushes, new work gets 503,
        and the server stops cleanly."""
        results = []
        lock = threading.Lock()

        def one(index):
            payload = {
                "site": trained_world["site"],
                "pages": [
                    {
                        "html": trained_world["html"][index % 12],
                        "url": f"p{index}",
                    }
                ],
            }
            try:
                outcome = _post(serving.port, payload)
            except OSError as exc:
                outcome = ("connect-error", exc, None)
            with lock:
                results.append((index, outcome))

        threads = [
            threading.Thread(target=one, args=(index,)) for index in range(6)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.1)  # a few requests are queued or in flight
        serving.initiate_drain()
        for thread in threads:
            thread.join()
        assert serving.wait_stopped(timeout=10)
        assert serving.phase == "stopped"
        statuses = sorted(result[1][0] for result in results)
        # every request got exactly one definitive answer: served, or
        # refused because the drain won the race.
        assert len(statuses) == 6
        assert all(status in (200, 503) for status in statuses)
        counters = serving.stats_payload()["metrics"]["counters"]
        assert counters.get("serving.accepted", 0) == counters.get(
            "serving.responses", 0
        )

    def test_drain_is_idempotent_and_readyz_flips(self, serving):
        serving.initiate_drain()
        serving.initiate_drain()  # second call is a no-op
        assert serving.wait_stopped(timeout=10)
        assert serving.phase == "stopped"

    @pytest.mark.parametrize(
        "serving",
        [dict(workers=1, drain_timeout=0.5, request_deadline=5.0)],
        indirect=True,
    )
    def test_forced_drain_answers_stuck_work_503(
        self, serving, trained_world
    ):
        """A wedged worker cannot make drain hang past its budget: what
        is still queued gets a definitive 503."""
        site = trained_world["site"]
        plan = FaultPlan(
            [
                FaultSpec(
                    "serving.batch", site=site,
                    action="hang", delay=30.0, times=1,
                )
            ]
        )
        with active(plan):
            payload = _request(trained_world)
            results = []
            threads = [
                threading.Thread(
                    target=lambda: results.append(_post(serving.port, payload))
                )
                for _ in range(2)
            ]
            threads[0].start()
            time.sleep(0.3)  # worker claims and hangs
            threads[1].start()  # this one stays queued
            time.sleep(0.1)
            started = time.monotonic()
            serving.initiate_drain()
            assert serving.wait_stopped(timeout=10)
            elapsed = time.monotonic() - started
            for thread in threads:
                thread.join()
        assert elapsed < 8.0  # bounded by drain_timeout + join grace
        statuses = sorted(result[0] for result in results)
        # Both answered exactly once: the queued one 503 by forced drain,
        # the hung one 503/504 depending on who claimed it first.
        assert len(statuses) == 2
        assert all(status in (503, 504) for status in statuses)
