"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main
from repro.datasets import generate_swde, seed_kb_for
from repro.kb.io import save_kb


@pytest.fixture(scope="module")
def site_on_disk(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("cli")
    dataset = generate_swde("movie", n_sites=2, pages_per_site=16, seed=2)
    kb = seed_kb_for(dataset, 2)
    kb_path = tmp / "kb.json"
    save_kb(kb, kb_path)
    pages_dir = tmp / "pages"
    pages_dir.mkdir()
    for index, page in enumerate(dataset.sites[1].pages):
        (pages_dir / f"page{index:03d}.html").write_text(page.html)
    return tmp, kb_path, pages_dir


class TestExtractCommand:
    def test_extract_to_file(self, site_on_disk):
        tmp, kb_path, pages_dir = site_on_disk
        out = tmp / "triples.jsonl"
        code = main(
            ["extract", "--kb", str(kb_path), "--pages", str(pages_dir),
             "--output", str(out)]
        )
        assert code == 0
        lines = out.read_text().strip().splitlines()
        assert lines
        triple = json.loads(lines[0])
        assert set(triple) == {"page", "subject", "predicate", "object", "confidence"}
        assert 0.5 <= triple["confidence"] <= 1.0

    def test_threshold_reduces_output(self, site_on_disk):
        tmp, kb_path, pages_dir = site_on_disk
        low, high = tmp / "low.jsonl", tmp / "high.jsonl"
        main(["extract", "--kb", str(kb_path), "--pages", str(pages_dir),
              "--threshold", "0.5", "--output", str(low)])
        main(["extract", "--kb", str(kb_path), "--pages", str(pages_dir),
              "--threshold", "0.99", "--output", str(high)])
        assert len(high.read_text().splitlines()) <= len(low.read_text().splitlines())

    def test_annotate_command(self, site_on_disk, capsys):
        _, kb_path, pages_dir = site_on_disk
        code = main(["annotate", "--kb", str(kb_path), "--pages", str(pages_dir)])
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines
        record = json.loads(lines[0])
        assert set(record) == {"page", "topic", "predicate", "text", "xpath"}

    def test_missing_pages_dir(self, site_on_disk):
        _, kb_path, _ = site_on_disk
        with pytest.raises(SystemExit):
            main(["extract", "--kb", str(kb_path), "--pages", "/nonexistent/dir"])
