"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main
from repro.datasets import generate_swde, seed_kb_for
from repro.kb.io import save_kb

# `run-corpus` CLI tests exercise the runner inline (workers=1); the
# process-pool path is covered by tests/test_runtime_runner.py.


@pytest.fixture(scope="module")
def site_on_disk(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("cli")
    dataset = generate_swde("movie", n_sites=2, pages_per_site=16, seed=2)
    kb = seed_kb_for(dataset, 2)
    kb_path = tmp / "kb.json"
    save_kb(kb, kb_path)
    pages_dir = tmp / "pages"
    pages_dir.mkdir()
    for index, page in enumerate(dataset.sites[1].pages):
        (pages_dir / f"page{index:03d}.html").write_text(page.html)
    return tmp, kb_path, pages_dir


class TestExtractCommand:
    def test_extract_to_file(self, site_on_disk):
        tmp, kb_path, pages_dir = site_on_disk
        out = tmp / "triples.jsonl"
        code = main(
            ["extract", "--kb", str(kb_path), "--pages", str(pages_dir),
             "--output", str(out)]
        )
        assert code == 0
        lines = out.read_text().strip().splitlines()
        assert lines
        triple = json.loads(lines[0])
        assert set(triple) == {"page", "subject", "predicate", "object", "confidence"}
        assert 0.5 <= triple["confidence"] <= 1.0

    def test_threshold_reduces_output(self, site_on_disk):
        tmp, kb_path, pages_dir = site_on_disk
        low, high = tmp / "low.jsonl", tmp / "high.jsonl"
        main(["extract", "--kb", str(kb_path), "--pages", str(pages_dir),
              "--threshold", "0.5", "--output", str(low)])
        main(["extract", "--kb", str(kb_path), "--pages", str(pages_dir),
              "--threshold", "0.99", "--output", str(high)])
        assert len(high.read_text().splitlines()) <= len(low.read_text().splitlines())

    def test_annotate_command(self, site_on_disk, capsys):
        _, kb_path, pages_dir = site_on_disk
        code = main(["annotate", "--kb", str(kb_path), "--pages", str(pages_dir)])
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines
        record = json.loads(lines[0])
        assert set(record) == {"page", "topic", "predicate", "text", "xpath"}

    def test_missing_pages_dir(self, site_on_disk):
        _, kb_path, _ = site_on_disk
        with pytest.raises(SystemExit):
            main(["extract", "--kb", str(kb_path), "--pages", "/nonexistent/dir"])


class TestTrainServeCommands:
    def test_train_then_serve_equals_extract(self, site_on_disk, tmp_path):
        """The acceptance contract: train + serve ≡ one-shot extract."""
        _, kb_path, pages_dir = site_on_disk
        oneshot = tmp_path / "oneshot.jsonl"
        served = tmp_path / "served.jsonl"
        registry = tmp_path / "models"

        assert main(["extract", "--kb", str(kb_path), "--pages", str(pages_dir),
                     "--output", str(oneshot)]) == 0
        assert main(["train", "--kb", str(kb_path), "--pages", str(pages_dir),
                     "--registry", str(registry)]) == 0
        assert main(["serve", "--registry", str(registry),
                     "--pages", str(pages_dir), "--output", str(served)]) == 0
        assert oneshot.read_text() == served.read_text()
        assert oneshot.read_text().strip()

    def test_serve_never_trains(self, site_on_disk, tmp_path, monkeypatch):
        _, kb_path, pages_dir = site_on_disk
        registry = tmp_path / "models"
        main(["train", "--kb", str(kb_path), "--pages", str(pages_dir),
              "--registry", str(registry)])

        import repro.core.extraction.trainer as trainer_module

        def explode(*args, **kwargs):
            raise AssertionError("serve must not train")

        monkeypatch.setattr(trainer_module.CeresTrainer, "train", explode)
        out = tmp_path / "served.jsonl"
        assert main(["serve", "--registry", str(registry),
                     "--pages", str(pages_dir), "--output", str(out)]) == 0
        assert out.read_text().strip()

    def test_serve_site_override_and_missing_site(self, site_on_disk, tmp_path):
        _, kb_path, pages_dir = site_on_disk
        registry = tmp_path / "models"
        main(["train", "--kb", str(kb_path), "--pages", str(pages_dir),
              "--registry", str(registry), "--site", "mysite"])
        out = tmp_path / "served.jsonl"
        assert main(["serve", "--registry", str(registry), "--site", "mysite",
                     "--pages", str(pages_dir), "--output", str(out)]) == 0
        with pytest.raises(SystemExit, match="registry error"):
            main(["serve", "--registry", str(registry), "--site", "unknown",
                  "--pages", str(pages_dir)])

    def test_serve_threshold_tightens_output(self, site_on_disk, tmp_path):
        _, kb_path, pages_dir = site_on_disk
        registry = tmp_path / "models"
        main(["train", "--kb", str(kb_path), "--pages", str(pages_dir),
              "--registry", str(registry)])
        low, high = tmp_path / "low.jsonl", tmp_path / "high.jsonl"
        main(["serve", "--registry", str(registry), "--pages", str(pages_dir),
              "--threshold", "0.5", "--output", str(low)])
        main(["serve", "--registry", str(registry), "--pages", str(pages_dir),
              "--threshold", "0.99", "--output", str(high)])
        assert len(high.read_text().splitlines()) <= len(low.read_text().splitlines())


@pytest.fixture(scope="module")
def corpus_on_disk(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("corpus_cli")
    dataset = generate_swde("movie", n_sites=4, pages_per_site=14, seed=9)
    kb = seed_kb_for(dataset, 9)
    kb_path = tmp / "kb.json"
    save_kb(kb, kb_path)
    corpus = tmp / "sites"
    corpus.mkdir()
    for site in dataset.sites[1:4]:
        site_dir = corpus / site.name
        site_dir.mkdir()
        for index, page in enumerate(site.pages):
            (site_dir / f"page{index:03d}.html").write_text(page.html)
    (corpus / "empty_site").mkdir()  # ignored: no .html/.htm files
    return tmp, kb_path, corpus, [s.name for s in dataset.sites[1:4]]


class TestRunCorpusCommand:
    def test_run_corpus_writes_artifacts_and_rows(self, corpus_on_disk, tmp_path):
        tmp, kb_path, corpus, site_names = corpus_on_disk
        out = tmp_path / "triples.jsonl"
        registry = tmp_path / "models"
        code = main(["run-corpus", "--kb", str(kb_path), "--corpus", str(corpus),
                     "--registry", str(registry), "--output", str(out),
                     "--workers", "1"])
        assert code == 0
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert {row["site"] for row in rows} == set(site_names)
        assert set(rows[0].keys()) == {"site", "page", "subject", "predicate",
                                       "object", "confidence"}
        from repro.runtime import ModelRegistry

        assert ModelRegistry(registry).sites() == sorted(site_names)

    def test_run_corpus_failure_isolation_via_manifest(
        self, corpus_on_disk, tmp_path
    ):
        tmp, kb_path, corpus, site_names = corpus_on_disk
        manifest = tmp_path / "manifest.jsonl"
        entries = [{"site": name, "pages": str(corpus / name)}
                   for name in site_names]
        # An existing directory with no pages: passes manifest validation
        # (a *missing* directory is now a discovery-time error) but fails
        # in the worker, exercising per-site isolation.
        (tmp_path / "empty").mkdir()
        entries.append({"site": "doomed", "pages": str(tmp_path / "empty")})
        manifest.write_text(
            "\n".join(json.dumps(entry) for entry in entries) + "\n"
        )
        out = tmp_path / "triples.jsonl"
        registry = tmp_path / "models"
        code = main(["run-corpus", "--kb", str(kb_path),
                     "--corpus", str(manifest), "--registry", str(registry),
                     "--output", str(out), "--workers", "1"])
        assert code == 0  # the healthy sites succeeded
        from repro.runtime import ModelRegistry

        assert ModelRegistry(registry).sites() == sorted(site_names)

    def test_run_corpus_all_failed_exits_nonzero(self, corpus_on_disk, tmp_path):
        tmp, kb_path, _, _ = corpus_on_disk
        manifest = tmp_path / "manifest.jsonl"
        (tmp_path / "empty").mkdir()
        manifest.write_text(
            json.dumps({"site": "doomed", "pages": str(tmp_path / "empty")})
            + "\n"
        )
        code = main(["run-corpus", "--kb", str(kb_path),
                     "--corpus", str(manifest),
                     "--registry", str(tmp_path / "models"),
                     "--output", str(tmp_path / "out.jsonl"), "--workers", "1"])
        assert code == 1

    def test_run_corpus_bad_corpus_path(self, corpus_on_disk, tmp_path):
        _, kb_path, _, _ = corpus_on_disk
        with pytest.raises(SystemExit):
            main(["run-corpus", "--kb", str(kb_path),
                  "--corpus", str(tmp_path / "nothing"),
                  "--registry", str(tmp_path / "models")])


class TestFuseCommand:
    def test_run_corpus_fuse_output_equals_standalone_fuse(
        self, corpus_on_disk, tmp_path
    ):
        """The acceptance contract: run-corpus --fuse-output and
        `repro fuse --kb` over the same rows are byte-identical."""
        tmp, kb_path, corpus, _ = corpus_on_disk
        rows = tmp_path / "triples.jsonl"
        fused_inline = tmp_path / "fused_inline.jsonl"
        code = main(["run-corpus", "--kb", str(kb_path), "--corpus", str(corpus),
                     "--registry", str(tmp_path / "models"),
                     "--output", str(rows), "--workers", "1",
                     "--fuse-output", str(fused_inline)])
        assert code == 0
        fused_standalone = tmp_path / "fused_standalone.jsonl"
        assert main(["fuse", "--input", str(rows), "--kb", str(kb_path),
                     "--output", str(fused_standalone)]) == 0
        assert fused_inline.read_text() == fused_standalone.read_text()
        assert fused_inline.read_text().strip()

    def test_fuse_output_shape_and_order(self, corpus_on_disk, tmp_path):
        tmp, kb_path, corpus, site_names = corpus_on_disk
        rows = tmp_path / "triples.jsonl"
        main(["run-corpus", "--kb", str(kb_path), "--corpus", str(corpus),
              "--registry", str(tmp_path / "models"),
              "--output", str(rows), "--workers", "1"])
        fused = tmp_path / "fused.jsonl"
        assert main(["fuse", "--input", str(rows),
                     "--output", str(fused)]) == 0
        facts = [json.loads(line) for line in fused.read_text().splitlines()]
        assert facts
        assert set(facts[0]) == {"subject", "predicate", "object", "score",
                                 "n_sites", "sites"}
        scores = [f["score"] for f in facts]
        assert scores == sorted(scores, reverse=True)
        assert {s for f in facts for s in f["sites"]} <= set(site_names)

    def test_fuse_shard_count_does_not_change_output(
        self, corpus_on_disk, tmp_path
    ):
        tmp, kb_path, corpus, _ = corpus_on_disk
        rows = tmp_path / "triples.jsonl"
        main(["run-corpus", "--kb", str(kb_path), "--corpus", str(corpus),
              "--registry", str(tmp_path / "models"),
              "--output", str(rows), "--workers", "1"])
        outputs = []
        for shards, resident in (("1", None), ("13", "5")):
            fused = tmp_path / f"fused_{shards}.jsonl"
            argv = ["fuse", "--input", str(rows), "--output", str(fused),
                    "--shards", shards,
                    "--spill-dir", str(tmp_path / f"spill_{shards}")]
            if resident is not None:
                argv += ["--max-resident-facts", resident]
            assert main(argv) == 0
            outputs.append(fused.read_text())
        assert outputs[0] == outputs[1]
        assert outputs[0].strip()

    def test_fuse_min_sites_filters(self, corpus_on_disk, tmp_path):
        tmp, kb_path, corpus, _ = corpus_on_disk
        rows = tmp_path / "triples.jsonl"
        main(["run-corpus", "--kb", str(kb_path), "--corpus", str(corpus),
              "--registry", str(tmp_path / "models"),
              "--output", str(rows), "--workers", "1"])
        all_facts = tmp_path / "all.jsonl"
        multi = tmp_path / "multi.jsonl"
        main(["fuse", "--input", str(rows), "--output", str(all_facts)])
        main(["fuse", "--input", str(rows), "--output", str(multi),
              "--min-sites", "2"])
        n_all = len(all_facts.read_text().splitlines())
        n_multi = len(multi.read_text().splitlines())
        assert n_multi <= n_all
        for line in multi.read_text().splitlines():
            assert json.loads(line)["n_sites"] >= 2

    def test_fuse_siteless_rows_need_site_flag(self, site_on_disk, tmp_path):
        tmp, kb_path, pages_dir = site_on_disk
        rows = tmp_path / "rows.jsonl"
        main(["extract", "--kb", str(kb_path), "--pages", str(pages_dir),
              "--output", str(rows)])
        with pytest.raises(SystemExit, match="bad extraction row"):
            main(["fuse", "--input", str(rows),
                  "--output", str(tmp_path / "f.jsonl")])
        assert main(["fuse", "--input", str(rows), "--site", "onesite",
                     "--output", str(tmp_path / "f.jsonl")]) == 0
        fact = json.loads((tmp_path / "f.jsonl").read_text().splitlines()[0])
        assert list(fact["sites"]) == ["onesite"]

    def test_fuse_site_flag_never_overrides_row_labels(
        self, corpus_on_disk, tmp_path
    ):
        """--site is a fallback for label-less rows only; relabeling
        labeled rows would collapse all cross-site support to one site."""
        tmp, kb_path, corpus, _ = corpus_on_disk
        rows = tmp_path / "triples.jsonl"
        main(["run-corpus", "--kb", str(kb_path), "--corpus", str(corpus),
              "--registry", str(tmp_path / "models"),
              "--output", str(rows), "--workers", "1"])
        plain = tmp_path / "plain.jsonl"
        flagged = tmp_path / "flagged.jsonl"
        assert main(["fuse", "--input", str(rows),
                     "--output", str(plain)]) == 0
        assert main(["fuse", "--input", str(rows), "--site", "ignored",
                     "--output", str(flagged)]) == 0
        assert plain.read_text() == flagged.read_text()
        assert "ignored" not in flagged.read_text()

    def test_fuse_missing_input(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["fuse", "--input", str(tmp_path / "nope.jsonl")])

    def test_fuse_malformed_rows_fail_cleanly(self, tmp_path):
        """Valid JSON that is not an extraction row must name the line,
        not crash with a traceback."""
        bad = tmp_path / "bad.jsonl"
        bad.write_text('"not a dict"\n')
        with pytest.raises(SystemExit, match=r"bad\.jsonl:1: bad extraction row"):
            main(["fuse", "--input", str(bad)])
        bad.write_text(
            '{"site": "a", "subject": "X", "predicate": "p", '
            '"object": 7, "confidence": 0.5}\n'
        )
        with pytest.raises(SystemExit, match="bad extraction row"):
            main(["fuse", "--input", str(bad)])


class TestStatsCommand:
    def test_stats_without_pages(self, site_on_disk, tmp_path, capsys):
        _, kb_path, pages_dir = site_on_disk
        registry = tmp_path / "models"
        assert main(["train", "--kb", str(kb_path), "--pages", str(pages_dir),
                     "--registry", str(registry)]) == 0
        capsys.readouterr()
        assert main(["stats", "--registry", str(registry)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["available_sites"] == [pages_dir.name]
        assert payload["loaded_sites"] == []
        assert payload["cache_stats"]["sites"]["size"] == 0

    def test_stats_after_serving_pages(self, site_on_disk, tmp_path, capsys):
        _, kb_path, pages_dir = site_on_disk
        registry = tmp_path / "models"
        assert main(["train", "--kb", str(kb_path), "--pages", str(pages_dir),
                     "--registry", str(registry)]) == 0
        capsys.readouterr()
        assert main(["stats", "--registry", str(registry),
                     "--pages", str(pages_dir)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["served"]["pages"] == 16
        assert payload["served"]["extractions"] > 0
        assert payload["loaded_sites"] == [pages_dir.name]
        site_stats = payload["cache_stats"]["per_site"][pages_dir.name]
        # The batched scoring engine compiles features directly from the
        # vocabulary; the per-page registry LRU (and, for single-cluster
        # sites, the assignment memo) is a training/legacy-path cache and
        # stays cold during serving.
        assert site_stats["feature_registry"]["misses"] == 0
        assert site_stats["cluster_assignment"]["misses"] == 0

    def test_stats_unknown_site_errors(self, site_on_disk, tmp_path):
        _, _, pages_dir = site_on_disk
        registry = tmp_path / "empty-models"
        registry.mkdir()
        with pytest.raises(SystemExit, match="registry error"):
            main(["stats", "--registry", str(registry),
                  "--pages", str(pages_dir)])


class TestMinPredicatePagesFlag:
    def test_flag_threads_into_config(self, monkeypatch, site_on_disk, tmp_path):
        """--min-predicate-pages reaches CeresConfig on every annotation
        command (extract shown here; the parser wires the same option into
        annotate/train/run-corpus)."""
        _, kb_path, pages_dir = site_on_disk
        captured = {}
        from repro.core.pipeline import CeresPipeline

        original = CeresPipeline.__init__

        def spy(self, kb, config=None, annotator=None):
            captured["config"] = config
            original(self, kb, config, annotator)

        monkeypatch.setattr(CeresPipeline, "__init__", spy)
        code = main(
            ["extract", "--kb", str(kb_path), "--pages", str(pages_dir),
             "--min-predicate-pages", "7",
             "--output", str(tmp_path / "out.jsonl")]
        )
        assert code == 0
        assert captured["config"].min_predicate_pages == 7

    def test_default_leaves_config_untouched(self, site_on_disk, capsys):
        _, kb_path, pages_dir = site_on_disk
        code = main(["annotate", "--kb", str(kb_path), "--pages", str(pages_dir)])
        assert code == 0
        assert capsys.readouterr().out.strip()

    def test_rejects_non_positive(self, site_on_disk, tmp_path):
        _, kb_path, pages_dir = site_on_disk
        with pytest.raises(SystemExit):
            main(["extract", "--kb", str(kb_path), "--pages", str(pages_dir),
                  "--min-predicate-pages", "0",
                  "--output", str(tmp_path / "out.jsonl")])

    def test_accepted_by_all_annotation_commands(self):
        from repro.__main__ import _build_parser

        parser = _build_parser()
        for argv in (
            ["extract", "--kb", "k", "--pages", "p", "--min-predicate-pages", "2"],
            ["annotate", "--kb", "k", "--pages", "p", "--min-predicate-pages", "2"],
            ["train", "--kb", "k", "--pages", "p", "--registry", "r",
             "--min-predicate-pages", "2"],
            ["run-corpus", "--kb", "k", "--corpus", "c", "--registry", "r",
             "--min-predicate-pages", "2"],
        ):
            assert parser.parse_args(argv).min_predicate_pages == 2


class TestSkippedClusterReporting:
    def test_extract_reports_skipped_pages(self, site_on_disk, tmp_path, capsys):
        """Small-cluster pages must not vanish silently (they are dropped
        from annotation when below min_cluster_size)."""
        tmp, kb_path, pages_dir = site_on_disk
        # A 3-page site: below the default min_cluster_size of 4.
        small_dir = tmp_path / "small"
        small_dir.mkdir()
        for name in sorted(p.name for p in pages_dir.glob("*.html"))[:3]:
            (small_dir / name).write_text((pages_dir / name).read_text())
        code = main(["extract", "--kb", str(kb_path), "--pages", str(small_dir),
                     "--output", str(tmp_path / "out.jsonl")])
        assert code == 0
        err = capsys.readouterr().err
        assert "below min_cluster_size skipped" in err
        assert "3 page(s)" in err


class TestObservabilityFlags:
    def test_run_corpus_trace_and_metrics_outputs(self, corpus_on_disk, tmp_path):
        from repro import obs

        _, kb_path, corpus, site_names = corpus_on_disk
        spans_path = tmp_path / "spans.jsonl"
        metrics_path = tmp_path / "metrics.json"
        code = main(
            ["run-corpus", "--kb", str(kb_path), "--corpus", str(corpus),
             "--registry", str(tmp_path / "models"),
             "--output", str(tmp_path / "rows.jsonl"),
             "--fuse-output", str(tmp_path / "facts.jsonl"),
             "--workers", "1",
             "--trace-output", str(spans_path),
             "--metrics-output", str(metrics_path)]
        )
        assert code == 0
        # main() restored the disabled singletons.
        assert not obs.enabled()

        spans = [
            json.loads(line)
            for line in spans_path.read_text().splitlines()
        ]
        names = {span["name"] for span in spans}
        # The acceptance bar: every pipeline stage appears in the trace.
        assert {
            "stage.cluster", "stage.annotate", "stage.train",
            "stage.extract", "stage.fuse", "site.run",
        } <= names
        ids = [span["span_id"] for span in spans]
        assert len(ids) == len(set(ids))

        snapshot = json.loads(metrics_path.read_text())
        counters = snapshot["counters"]
        assert counters["runner.sites_ok"] == len(site_names)
        assert counters["fusion.facts"] > 0
        assert "cache.page_match.hits" in counters
        assert snapshot["histograms"]["runner.site_seconds"]["count"] == len(
            site_names
        )

    def test_extract_metrics_output(self, site_on_disk, tmp_path):
        _, kb_path, pages_dir = site_on_disk
        metrics_path = tmp_path / "extract_metrics.json"
        assert main(
            ["extract", "--kb", str(kb_path), "--pages", str(pages_dir),
             "--output", str(tmp_path / "t.jsonl"),
             "--metrics-output", str(metrics_path)]
        ) == 0
        snapshot = json.loads(metrics_path.read_text())
        counters = snapshot["counters"]
        assert counters["pipeline.pages"] == 16
        assert counters["pipeline.extractions"] > 0
        assert "cache.page_match.hits" in counters
        for stage in ("cluster", "annotate", "train", "extract"):
            assert f"stage.{stage}_seconds" in snapshot["histograms"]

    def test_serve_trace_output(self, site_on_disk, tmp_path):
        _, kb_path, pages_dir = site_on_disk
        registry = tmp_path / "models"
        assert main(["train", "--kb", str(kb_path), "--pages", str(pages_dir),
                     "--registry", str(registry)]) == 0
        spans_path = tmp_path / "serve_spans.jsonl"
        assert main(
            ["serve", "--registry", str(registry), "--pages", str(pages_dir),
             "--output", str(tmp_path / "s.jsonl"),
             "--trace-output", str(spans_path)]
        ) == 0
        spans = [
            json.loads(line)
            for line in spans_path.read_text().splitlines()
        ]
        assert any(s["name"] == "service.extract_pages" for s in spans)

    def test_fuse_metrics_output(self, corpus_on_disk, tmp_path):
        _, kb_path, corpus, _ = corpus_on_disk
        rows = tmp_path / "rows.jsonl"
        assert main(
            ["run-corpus", "--kb", str(kb_path), "--corpus", str(corpus),
             "--registry", str(tmp_path / "m"), "--output", str(rows),
             "--workers", "1"]
        ) == 0
        metrics_path = tmp_path / "fuse_metrics.json"
        assert main(
            ["fuse", "--input", str(rows),
             "--output", str(tmp_path / "facts.jsonl"),
             "--metrics-output", str(metrics_path)]
        ) == 0
        counters = json.loads(metrics_path.read_text())["counters"]
        assert counters["fusion.rows"] > 0
        assert counters["fusion.facts"] > 0

    def test_stats_payload_includes_metrics(self, site_on_disk, tmp_path, capsys):
        _, kb_path, pages_dir = site_on_disk
        registry = tmp_path / "models"
        assert main(["train", "--kb", str(kb_path), "--pages", str(pages_dir),
                     "--registry", str(registry)]) == 0
        capsys.readouterr()
        assert main(["stats", "--registry", str(registry),
                     "--pages", str(pages_dir)]) == 0
        payload = json.loads(capsys.readouterr().out)
        counters = payload["metrics"]["counters"]
        assert counters["service.requests"] == 1
        assert counters["service.pages"] == 16
        assert "cache.resident_sites.hits" in counters
