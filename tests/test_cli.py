"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main
from repro.datasets import generate_swde, seed_kb_for
from repro.kb.io import save_kb

# `run-corpus` CLI tests exercise the runner inline (workers=1); the
# process-pool path is covered by tests/test_runtime_runner.py.


@pytest.fixture(scope="module")
def site_on_disk(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("cli")
    dataset = generate_swde("movie", n_sites=2, pages_per_site=16, seed=2)
    kb = seed_kb_for(dataset, 2)
    kb_path = tmp / "kb.json"
    save_kb(kb, kb_path)
    pages_dir = tmp / "pages"
    pages_dir.mkdir()
    for index, page in enumerate(dataset.sites[1].pages):
        (pages_dir / f"page{index:03d}.html").write_text(page.html)
    return tmp, kb_path, pages_dir


class TestExtractCommand:
    def test_extract_to_file(self, site_on_disk):
        tmp, kb_path, pages_dir = site_on_disk
        out = tmp / "triples.jsonl"
        code = main(
            ["extract", "--kb", str(kb_path), "--pages", str(pages_dir),
             "--output", str(out)]
        )
        assert code == 0
        lines = out.read_text().strip().splitlines()
        assert lines
        triple = json.loads(lines[0])
        assert set(triple) == {"page", "subject", "predicate", "object", "confidence"}
        assert 0.5 <= triple["confidence"] <= 1.0

    def test_threshold_reduces_output(self, site_on_disk):
        tmp, kb_path, pages_dir = site_on_disk
        low, high = tmp / "low.jsonl", tmp / "high.jsonl"
        main(["extract", "--kb", str(kb_path), "--pages", str(pages_dir),
              "--threshold", "0.5", "--output", str(low)])
        main(["extract", "--kb", str(kb_path), "--pages", str(pages_dir),
              "--threshold", "0.99", "--output", str(high)])
        assert len(high.read_text().splitlines()) <= len(low.read_text().splitlines())

    def test_annotate_command(self, site_on_disk, capsys):
        _, kb_path, pages_dir = site_on_disk
        code = main(["annotate", "--kb", str(kb_path), "--pages", str(pages_dir)])
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines
        record = json.loads(lines[0])
        assert set(record) == {"page", "topic", "predicate", "text", "xpath"}

    def test_missing_pages_dir(self, site_on_disk):
        _, kb_path, _ = site_on_disk
        with pytest.raises(SystemExit):
            main(["extract", "--kb", str(kb_path), "--pages", "/nonexistent/dir"])


class TestTrainServeCommands:
    def test_train_then_serve_equals_extract(self, site_on_disk, tmp_path):
        """The acceptance contract: train + serve ≡ one-shot extract."""
        _, kb_path, pages_dir = site_on_disk
        oneshot = tmp_path / "oneshot.jsonl"
        served = tmp_path / "served.jsonl"
        registry = tmp_path / "models"

        assert main(["extract", "--kb", str(kb_path), "--pages", str(pages_dir),
                     "--output", str(oneshot)]) == 0
        assert main(["train", "--kb", str(kb_path), "--pages", str(pages_dir),
                     "--registry", str(registry)]) == 0
        assert main(["serve", "--registry", str(registry),
                     "--pages", str(pages_dir), "--output", str(served)]) == 0
        assert oneshot.read_text() == served.read_text()
        assert oneshot.read_text().strip()

    def test_serve_never_trains(self, site_on_disk, tmp_path, monkeypatch):
        _, kb_path, pages_dir = site_on_disk
        registry = tmp_path / "models"
        main(["train", "--kb", str(kb_path), "--pages", str(pages_dir),
              "--registry", str(registry)])

        import repro.core.extraction.trainer as trainer_module

        def explode(*args, **kwargs):
            raise AssertionError("serve must not train")

        monkeypatch.setattr(trainer_module.CeresTrainer, "train", explode)
        out = tmp_path / "served.jsonl"
        assert main(["serve", "--registry", str(registry),
                     "--pages", str(pages_dir), "--output", str(out)]) == 0
        assert out.read_text().strip()

    def test_serve_site_override_and_missing_site(self, site_on_disk, tmp_path):
        _, kb_path, pages_dir = site_on_disk
        registry = tmp_path / "models"
        main(["train", "--kb", str(kb_path), "--pages", str(pages_dir),
              "--registry", str(registry), "--site", "mysite"])
        out = tmp_path / "served.jsonl"
        assert main(["serve", "--registry", str(registry), "--site", "mysite",
                     "--pages", str(pages_dir), "--output", str(out)]) == 0
        with pytest.raises(SystemExit, match="registry error"):
            main(["serve", "--registry", str(registry), "--site", "unknown",
                  "--pages", str(pages_dir)])

    def test_serve_threshold_tightens_output(self, site_on_disk, tmp_path):
        _, kb_path, pages_dir = site_on_disk
        registry = tmp_path / "models"
        main(["train", "--kb", str(kb_path), "--pages", str(pages_dir),
              "--registry", str(registry)])
        low, high = tmp_path / "low.jsonl", tmp_path / "high.jsonl"
        main(["serve", "--registry", str(registry), "--pages", str(pages_dir),
              "--threshold", "0.5", "--output", str(low)])
        main(["serve", "--registry", str(registry), "--pages", str(pages_dir),
              "--threshold", "0.99", "--output", str(high)])
        assert len(high.read_text().splitlines()) <= len(low.read_text().splitlines())


class TestRunCorpusCommand:
    @pytest.fixture(scope="class")
    def corpus_on_disk(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("corpus_cli")
        dataset = generate_swde("movie", n_sites=4, pages_per_site=14, seed=9)
        kb = seed_kb_for(dataset, 9)
        kb_path = tmp / "kb.json"
        save_kb(kb, kb_path)
        corpus = tmp / "sites"
        corpus.mkdir()
        for site in dataset.sites[1:4]:
            site_dir = corpus / site.name
            site_dir.mkdir()
            for index, page in enumerate(site.pages):
                (site_dir / f"page{index:03d}.html").write_text(page.html)
        (corpus / "empty_site").mkdir()  # ignored: no .html files
        return tmp, kb_path, corpus, [s.name for s in dataset.sites[1:4]]

    def test_run_corpus_writes_artifacts_and_rows(self, corpus_on_disk, tmp_path):
        tmp, kb_path, corpus, site_names = corpus_on_disk
        out = tmp_path / "triples.jsonl"
        registry = tmp_path / "models"
        code = main(["run-corpus", "--kb", str(kb_path), "--corpus", str(corpus),
                     "--registry", str(registry), "--output", str(out),
                     "--workers", "1"])
        assert code == 0
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert {row["site"] for row in rows} == set(site_names)
        assert set(rows[0].keys()) == {"site", "page", "subject", "predicate",
                                       "object", "confidence"}
        from repro.runtime import ModelRegistry

        assert ModelRegistry(registry).sites() == sorted(site_names)

    def test_run_corpus_failure_isolation_via_manifest(
        self, corpus_on_disk, tmp_path
    ):
        tmp, kb_path, corpus, site_names = corpus_on_disk
        manifest = tmp_path / "manifest.jsonl"
        entries = [{"site": name, "pages": str(corpus / name)}
                   for name in site_names]
        entries.append({"site": "doomed", "pages": str(tmp_path / "missing")})
        manifest.write_text(
            "\n".join(json.dumps(entry) for entry in entries) + "\n"
        )
        out = tmp_path / "triples.jsonl"
        registry = tmp_path / "models"
        code = main(["run-corpus", "--kb", str(kb_path),
                     "--corpus", str(manifest), "--registry", str(registry),
                     "--output", str(out), "--workers", "1"])
        assert code == 0  # the healthy sites succeeded
        from repro.runtime import ModelRegistry

        assert ModelRegistry(registry).sites() == sorted(site_names)

    def test_run_corpus_all_failed_exits_nonzero(self, corpus_on_disk, tmp_path):
        tmp, kb_path, _, _ = corpus_on_disk
        manifest = tmp_path / "manifest.jsonl"
        manifest.write_text(
            json.dumps({"site": "doomed", "pages": str(tmp_path / "missing")})
            + "\n"
        )
        code = main(["run-corpus", "--kb", str(kb_path),
                     "--corpus", str(manifest),
                     "--registry", str(tmp_path / "models"),
                     "--output", str(tmp_path / "out.jsonl"), "--workers", "1"])
        assert code == 1

    def test_run_corpus_bad_corpus_path(self, corpus_on_disk, tmp_path):
        _, kb_path, _, _ = corpus_on_disk
        with pytest.raises(SystemExit):
            main(["run-corpus", "--kb", str(kb_path),
                  "--corpus", str(tmp_path / "nothing"),
                  "--registry", str(tmp_path / "models")])


class TestStatsCommand:
    def test_stats_without_pages(self, site_on_disk, tmp_path, capsys):
        _, kb_path, pages_dir = site_on_disk
        registry = tmp_path / "models"
        assert main(["train", "--kb", str(kb_path), "--pages", str(pages_dir),
                     "--registry", str(registry)]) == 0
        capsys.readouterr()
        assert main(["stats", "--registry", str(registry)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["available_sites"] == [pages_dir.name]
        assert payload["loaded_sites"] == []
        assert payload["cache_stats"]["sites"]["size"] == 0

    def test_stats_after_serving_pages(self, site_on_disk, tmp_path, capsys):
        _, kb_path, pages_dir = site_on_disk
        registry = tmp_path / "models"
        assert main(["train", "--kb", str(kb_path), "--pages", str(pages_dir),
                     "--registry", str(registry)]) == 0
        capsys.readouterr()
        assert main(["stats", "--registry", str(registry),
                     "--pages", str(pages_dir)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["served"]["pages"] == 16
        assert payload["served"]["extractions"] > 0
        assert payload["loaded_sites"] == [pages_dir.name]
        site_stats = payload["cache_stats"]["per_site"][pages_dir.name]
        # The batched scoring engine compiles features directly from the
        # vocabulary; the per-page registry LRU (and, for single-cluster
        # sites, the assignment memo) is a training/legacy-path cache and
        # stays cold during serving.
        assert site_stats["feature_registry"]["misses"] == 0
        assert site_stats["cluster_assignment"]["misses"] == 0

    def test_stats_unknown_site_errors(self, site_on_disk, tmp_path):
        _, _, pages_dir = site_on_disk
        registry = tmp_path / "empty-models"
        registry.mkdir()
        with pytest.raises(SystemExit, match="registry error"):
            main(["stats", "--registry", str(registry),
                  "--pages", str(pages_dir)])


class TestSkippedClusterReporting:
    def test_extract_reports_skipped_pages(self, site_on_disk, tmp_path, capsys):
        """Small-cluster pages must not vanish silently (they are dropped
        from annotation when below min_cluster_size)."""
        tmp, kb_path, pages_dir = site_on_disk
        # A 3-page site: below the default min_cluster_size of 4.
        small_dir = tmp_path / "small"
        small_dir.mkdir()
        for name in sorted(p.name for p in pages_dir.glob("*.html"))[:3]:
            (small_dir / name).write_text((pages_dir / name).read_text())
        code = main(["extract", "--kb", str(kb_path), "--pages", str(small_dir),
                     "--output", str(tmp_path / "out.jsonl")])
        assert code == 0
        err = capsys.readouterr().err
        assert "below min_cluster_size skipped" in err
        assert "3 page(s)" in err
