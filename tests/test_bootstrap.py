"""Tests for repro.core.bootstrap (seed-KB bootstrapping, footnote 2)."""

from repro.core.bootstrap import bootstrap_site, kb_from_extractions
from repro.core.extraction.extractor import Extraction
from repro.datasets import generate_swde
from repro.dom.node import TextNode
from repro.evaluation.experiments.common import ground_truth_training_pages
from repro.baselines.vertex import VertexPlusPlus
from repro.kb.ontology import Ontology, Predicate


def ext(subject, predicate, obj, confidence):
    return Extraction(subject, predicate, obj, confidence, 0, TextNode(obj))


def ontology():
    return Ontology(
        [
            Predicate("directed_by", range_kind="entity"),
            Predicate("genre", range_kind="string", multi_valued=True),
        ]
    )


class TestKbFromExtractions:
    def test_basic(self):
        kb = kb_from_extractions(
            [
                ext("Film X", "directed_by", "Jane Doe", 0.9),
                ext("Film X", "genre", "Drama", 0.8),
                ext("Film Y", "genre", "Comedy", 0.95),
            ],
            ontology(),
            "film",
        )
        assert len(kb.entities) == 2
        assert len(kb) == 3
        assert kb.entity_ids_for_text("Film X")

    def test_low_confidence_dropped(self):
        kb = kb_from_extractions(
            [ext("Film X", "genre", "Drama", 0.2)], ontology(), "film",
            min_confidence=0.7,
        )
        assert len(kb) == 0

    def test_duplicates_collapse(self):
        kb = kb_from_extractions(
            [
                ext("Film X", "genre", "Drama", 0.9),
                ext("film x", "genre", "DRAMA", 0.8),
            ],
            ontology(),
            "film",
        )
        assert len(kb.entities) == 1
        assert len(kb) == 1

    def test_name_and_unknown_predicates_skipped(self):
        kb = kb_from_extractions(
            [
                ext("Film X", "name", "Film X", 0.9),
                ext("Film X", "not_in_ontology", "y", 0.9),
                ext("Film X", "genre", "Drama", 0.9),
            ],
            ontology(),
            "film",
        )
        assert {t.predicate for t in kb.triples} == {"genre"}


class TestBootstrapSite:
    def test_vertex_to_ceres_bootstrap(self):
        """The footnote-2 loop: wrapper on site A seeds CERES for site B."""
        dataset = generate_swde("movie", n_sites=2, pages_per_site=20, seed=5)
        source, target = dataset.sites
        # Supervised extractor on the source site (2 annotated pages).
        training = ground_truth_training_pages(source.pages[:2])
        vertex = VertexPlusPlus().fit(training)
        source_extractions = vertex.extract([p.document for p in source.pages])
        assert source_extractions

        kb, result = bootstrap_site(
            source_extractions,
            dataset.ontology,
            "film",
            [p.document for p in target.pages],
        )
        assert len(kb) > 20
        assert result.annotated_pages, "bootstrap KB failed to annotate the target"
        assert result.extractions
        # Precision of the bootstrapped extractor stays high.
        correct = 0
        for extraction in result.extractions:
            emission = target.pages[extraction.page_index].emission_for_node(
                extraction.node
            )
            if emission is not None and emission.predicate == extraction.predicate:
                correct += 1
        assert correct / len(result.extractions) > 0.85
