"""Tests for repro.core.extraction.features (Section 4.2)."""

from repro.core.config import CeresConfig
from repro.core.extraction.features import NodeFeatureExtractor
from repro.dom.parser import parse_html


def label_page(value: str = "Spike Lee") -> str:
    return (
        "<html><body><div class='info' id='main'>"
        "<div class='row'><span class='label'>Director:</span>"
        f"<span class='value' itemprop='director'>{value}</span></div>"
        "<div class='row'><span class='label'>Genre:</span>"
        "<span class='value'>Drama</span></div>"
        "</div></body></html>"
    )


class TestStructuralFeatures:
    def test_own_tag_feature(self):
        doc = parse_html(label_page())
        extractor = NodeFeatureExtractor(CeresConfig()).fit([doc])
        node = next(f for f in doc.text_fields() if f.text == "Spike Lee")
        features = extractor.features(node, doc)
        assert "xfer:s|tag|span|0|0" in features

    def test_attribute_features(self):
        doc = parse_html(label_page())
        extractor = NodeFeatureExtractor(CeresConfig()).fit([doc])
        node = next(f for f in doc.text_fields() if f.text == "Spike Lee")
        features = extractor.features(node, doc)
        assert "site:s|class|value|0|0" in features
        assert "site:s|itemprop|director|0|0" in features

    def test_ancestor_features(self):
        doc = parse_html(label_page())
        extractor = NodeFeatureExtractor(CeresConfig()).fit([doc])
        node = next(f for f in doc.text_fields() if f.text == "Spike Lee")
        features = extractor.features(node, doc)
        assert "site:s|class|row|1|0" in features
        assert "site:s|class|info|2|0" in features
        assert "site:s|id|main|2|0" in features

    def test_sibling_features(self):
        doc = parse_html(label_page())
        extractor = NodeFeatureExtractor(CeresConfig()).fit([doc])
        node = next(f for f in doc.text_fields() if f.text == "Spike Lee")
        features = extractor.features(node, doc)
        # The label span is the -1 sibling of the value span.
        assert "site:s|class|label|0|-1" in features

    def test_ancestor_level_limit(self):
        doc = parse_html(label_page())
        config = CeresConfig(struct_ancestor_levels=0)
        extractor = NodeFeatureExtractor(config).fit([doc])
        node = next(f for f in doc.text_fields() if f.text == "Spike Lee")
        features = extractor.features(node, doc)
        assert "site:s|class|row|1|0" not in features
        assert "xfer:s|tag|span|0|0" in features

    def test_sibling_width_limit(self):
        doc = parse_html(
            "<html><body><div>"
            + "".join(f"<p class='p{i}'>t{i}</p>" for i in range(12))
            + "</div></body></html>"
        )
        config = CeresConfig(struct_sibling_width=2)
        extractor = NodeFeatureExtractor(config).fit([doc])
        node = next(f for f in doc.text_fields() if f.text == "t6")
        features = extractor.features(node, doc)
        assert "site:s|class|p5|0|-1" in features
        assert "site:s|class|p4|0|-2" in features
        assert "site:s|class|p3|0|-3" not in features


class TestTextFeatures:
    def pages(self, n: int = 5):
        return [parse_html(label_page(f"Person {i}")) for i in range(n)]

    def test_frequent_strings_compiled(self):
        docs = self.pages()
        extractor = NodeFeatureExtractor(CeresConfig()).fit(docs)
        assert "Director:" in extractor.frequent_strings
        assert "Genre:" in extractor.frequent_strings
        # Values vary per page and must not qualify.
        assert "Person 0" not in extractor.frequent_strings

    def test_nearby_string_feature(self):
        docs = self.pages()
        extractor = NodeFeatureExtractor(CeresConfig()).fit(docs)
        node = next(f for f in docs[0].text_fields() if f.text == "Person 0")
        features = extractor.features(node, docs[0])
        assert any(name.startswith("site:t|Director:") for name in features)

    def test_far_string_no_feature(self):
        config = CeresConfig(text_feature_height=0)
        docs = self.pages()
        extractor = NodeFeatureExtractor(config).fit(docs)
        node = next(f for f in docs[0].text_fields() if f.text == "Person 0")
        features = extractor.features(node, docs[0])
        # Height 0 means only strings inside the same element qualify.
        assert not any(name.startswith("site:t|Director:") for name in features)

    def test_max_frequent_strings_zero_disables(self):
        config = CeresConfig(max_frequent_strings=0)
        docs = self.pages()
        extractor = NodeFeatureExtractor(config).fit(docs)
        assert extractor.frequent_strings == set()
        node = next(f for f in docs[0].text_fields() if f.text == "Person 0")
        features = extractor.features(node, docs[0])
        assert not any(name.startswith("site:t|") for name in features)

    def test_long_strings_not_frequent(self):
        long_text = "x" * 100
        docs = [
            parse_html(f"<html><body><p>{long_text}</p><p>v{i}</p></body></html>")
            for i in range(5)
        ]
        extractor = NodeFeatureExtractor(CeresConfig()).fit(docs)
        assert long_text not in extractor.frequent_strings

    def test_fit_empty(self):
        extractor = NodeFeatureExtractor(CeresConfig()).fit([])
        assert extractor.frequent_strings == set()

    def test_clear_page_cache(self):
        docs = self.pages()
        extractor = NodeFeatureExtractor(CeresConfig()).fit(docs)
        node = docs[0].text_fields()[0]
        extractor.features(node, docs[0])
        assert extractor._page_registry
        extractor.clear_page_cache()
        assert not extractor._page_registry


class TestRegistryCacheSafety:
    """The bug this PR kills: registries were keyed by ``id(document)``,
    so a GC-recycled object id could serve one page's frequent-string
    registry for a *different* page, silently corrupting features."""

    PAGE_A = (
        "<html><body><div><p>Director:</p><p>Spike Lee</p></div></body></html>"
    )
    PAGE_B = (
        "<html><body><div><p>Writer:</p><p>Spike Lee</p></div></body></html>"
    )

    def _extractor(self) -> NodeFeatureExtractor:
        extractor = NodeFeatureExtractor(CeresConfig())
        extractor.frequent_strings = {"Director:", "Writer:"}
        return extractor

    def test_recycled_object_id_does_not_cross_contaminate(self):
        import gc

        import pytest

        # Ground truth from a fresh extractor that has only ever seen B.
        truth_extractor = self._extractor()
        doc_b = parse_html(self.PAGE_B)
        node_b = next(f for f in doc_b.text_fields() if f.text == "Spike Lee")
        truth = {
            name for name in truth_extractor.features(node_b, doc_b)
            if name.startswith("site:t|")
        }
        assert any("Writer:" in name for name in truth)
        del doc_b, node_b

        extractor = self._extractor()
        seen_object_ids: set[int] = set()
        recycled = 0
        for _ in range(60):
            # Page A populates the registry cache, then its document dies,
            # freeing its memory for the interpreter to recycle.
            doc_a = parse_html(self.PAGE_A)
            node_a = next(
                f for f in doc_a.text_fields() if f.text == "Spike Lee"
            )
            features_a = extractor.features(node_a, doc_a)
            assert any(name.startswith("site:t|Director:") for name in features_a)
            seen_object_ids.add(id(doc_a))
            del doc_a, node_a
            # Parent/child pointers form reference cycles, so dead
            # documents wait on the cycle collector before their memory
            # (and object ids) can be reused.
            gc.collect()

            # Page B may be allocated at a recycled address: under the old
            # id()-keyed cache that returned A's registry for B.
            doc_b = parse_html(self.PAGE_B)
            if id(doc_b) in seen_object_ids:
                recycled += 1
            seen_object_ids.add(id(doc_b))
            node_b = next(
                f for f in doc_b.text_fields() if f.text == "Spike Lee"
            )
            features_b = {
                name for name in extractor.features(node_b, doc_b)
                if name.startswith("site:t|")
            }
            assert features_b == truth
            del doc_b, node_b
            gc.collect()

        if not recycled:  # pragma: no cover - allocator-dependent
            pytest.skip("interpreter never recycled a document id")

    def test_registry_cache_is_bounded(self):
        config = CeresConfig(feature_registry_cache_size=4)
        extractor = NodeFeatureExtractor(config)
        extractor.frequent_strings = {"Director:"}
        docs = [parse_html(self.PAGE_A) for _ in range(10)]
        for doc in docs:
            node = doc.text_fields()[0]
            extractor.features(node, doc)
        stats = extractor.cache_stats()
        assert stats.size == 4
        assert stats.capacity == 4
        assert stats.evictions == 6

    def test_cache_stats_count_hits(self):
        extractor = self._extractor()
        doc = parse_html(self.PAGE_A)
        node = doc.text_fields()[0]
        extractor.features(node, doc)
        extractor.features(node, doc)
        stats = extractor.cache_stats()
        assert stats.misses == 1
        assert stats.hits == 1
