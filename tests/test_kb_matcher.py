"""Tests for repro.kb.matcher (page/KB matching)."""

from repro.dom.parser import parse_html
from repro.kb.matcher import PageMatcher
from repro.kb.ontology import Ontology, Predicate
from repro.kb.store import KnowledgeBase
from repro.kb.triple import Entity, Value


def build_kb() -> KnowledgeBase:
    ontology = Ontology(
        [
            Predicate("directed_by", range_kind="entity"),
            Predicate("genre", range_kind="string", multi_valued=True),
            Predicate("release_date", range_kind="date"),
        ]
    )
    kb = KnowledgeBase(ontology)
    kb.add_entity(Entity("f1", "Do the Right Thing", "film"))
    kb.add_entity(Entity("p1", "Spike Lee", "person"))
    kb.add_fact("f1", "directed_by", Value.entity("p1"))
    kb.add_fact("f1", "genre", Value.literal("Drama"))
    kb.add_fact("f1", "release_date", Value.literal("1989-06-30"))
    return kb


PAGE = """
<html><body>
<h1>Do the Right Thing</h1>
<div class="credits"><span>Director</span><span>Spike Lee</span></div>
<div class="genres"><span>Drama</span></div>
<div class="release">June 30, 1989</div>
<div class="cast"><span>Spike Lee</span></div>
<p>A very long description that happens to mention Spike Lee within flowing
prose text that runs past the mention-length cutoff and should therefore not
be treated as a candidate entity mention by the matcher at all, even though
the name appears within it somewhere.</p>
</body></html>
"""


class TestPageMatcher:
    def test_entity_mentions(self):
        match = PageMatcher(build_kb()).match(parse_html(PAGE))
        assert set(match.entity_mentions) == {"f1", "p1"}
        # Spike Lee appears twice as a full field (credits + cast).
        assert len(match.entity_mentions["p1"]) == 2

    def test_long_prose_not_matched(self):
        match = PageMatcher(build_kb()).match(parse_html(PAGE))
        for node in match.entity_mentions["p1"]:
            assert len(node.text) < 50

    def test_value_keys_include_literals(self):
        match = PageMatcher(build_kb()).match(parse_html(PAGE))
        assert ("l", "drama") in match.value_keys
        assert ("l", "1989 06 30") in match.value_keys  # via date variant
        assert ("e", "p1") in match.value_keys

    def test_entities_in_field(self):
        doc = parse_html(PAGE)
        match = PageMatcher(build_kb()).match(doc)
        h1_text = doc.text_fields()[0]
        assert match.entities_in_field(h1_text) == {"f1"}

    def test_mentions_of_surfaces(self):
        doc = parse_html(PAGE)
        match = PageMatcher(build_kb()).match(doc)
        mentions = match.mentions_of_surfaces(["Spike Lee"])
        assert len(mentions) == 2
        assert [m.text for m in mentions] == ["Spike Lee", "Spike Lee"]

    def test_mentions_of_surfaces_variant_dedup(self):
        doc = parse_html(PAGE)
        match = PageMatcher(build_kb()).match(doc)
        mentions = match.mentions_of_surfaces(["Spike Lee", "Lee, Spike"])
        assert len(mentions) == 2

    def test_page_entity_ids(self):
        match = PageMatcher(build_kb()).match(parse_html(PAGE))
        assert match.page_entity_ids() == {"f1", "p1"}

    def test_cache_identity(self):
        matcher = PageMatcher(build_kb())
        doc = parse_html(PAGE)
        assert matcher.match(doc) is matcher.match(doc)
        matcher.clear_cache()
        assert matcher.match(doc) is not None

    def test_cache_bounded_with_eviction(self):
        matcher = PageMatcher(build_kb(), cache_size=2)
        docs = [parse_html(PAGE) for _ in range(5)]
        for doc in docs:
            matcher.match(doc)
        stats = matcher.cache_stats()
        assert stats.size == 2
        assert stats.evictions == 3
        # An evicted page is transparently re-matched with identical results.
        rematch = matcher.match(docs[0])
        assert rematch.page_entity_ids() == {"f1", "p1"}

    def test_cache_stats_hits_and_misses(self):
        matcher = PageMatcher(build_kb(), cache_size=4)
        doc = parse_html(PAGE)
        matcher.match(doc)
        matcher.match(doc)
        stats = matcher.cache_stats()
        assert stats.misses == 1
        assert stats.hits == 1

    def test_cache_keyed_by_doc_id_not_object_identity(self):
        """Two live documents never share cache entries, and the key
        survives the document being re-created (different doc_id)."""
        matcher = PageMatcher(build_kb())
        doc_a = parse_html(PAGE)
        doc_b = parse_html("<html><body><p>Nothing known here</p></body></html>")
        match_a = matcher.match(doc_a)
        match_b = matcher.match(doc_b)
        assert match_a.page_entity_ids() == {"f1", "p1"}
        assert match_b.page_entity_ids() == set()
        assert doc_a.doc_id != doc_b.doc_id

    def test_no_matches(self):
        doc = parse_html("<html><body><p>Nothing known here</p></body></html>")
        match = PageMatcher(build_kb()).match(doc)
        assert match.page_entity_ids() == set()
        assert match.value_keys == set()
