"""Failure-injection tests: the pipeline must degrade gracefully, never crash.

Real crawls contain malformed markup, empty pages, pages in the wrong
language, and KBs that match nothing.  CERES's contract in all such cases
is "extract nothing", not "raise".
"""

import pytest

from repro.core.config import CeresConfig
from repro.core.pipeline import CeresPipeline
from repro.dom.parser import parse_html
from repro.kb.ontology import Ontology, Predicate
from repro.kb.store import KnowledgeBase
from repro.kb.triple import Entity, Value


def tiny_kb() -> KnowledgeBase:
    ontology = Ontology([Predicate("genre", range_kind="string", multi_valued=True)])
    kb = KnowledgeBase(ontology)
    kb.add_entity(Entity("f1", "Some Known Film", "film"))
    kb.add_fact("f1", "genre", Value.literal("Drama"))
    return kb


MALFORMED = [
    "",  # empty document
    "<html>",  # nothing closed
    "<html><body><div><div><p>deep unclosed",
    "<html><body></p></div></span>stray closers</body></html>",
    "<html><body><p>&unknown; &amp; entities &#x41;</p></body></html>",
    "<p>no html element at all</p>",
    "plain text, no markup whatsoever",
    "<html><body>" + "<div>" * 200 + "deep" + "</div>" * 200 + "</body></html>",
]


class TestMalformedHtml:
    @pytest.mark.parametrize("html", MALFORMED)
    def test_parser_never_raises(self, html):
        document = parse_html(html)
        assert document.root is not None
        for field in document.text_fields():
            assert field.text

    @pytest.mark.parametrize("html", MALFORMED)
    def test_pipeline_never_raises(self, html):
        pipeline = CeresPipeline(tiny_kb(), CeresConfig(min_cluster_size=1))
        documents = [parse_html(html)] * 4
        result = pipeline.run(documents, documents)
        assert result.extractions == []


class TestDegenerateInputs:
    def test_empty_document_list(self):
        pipeline = CeresPipeline(tiny_kb(), CeresConfig())
        result = pipeline.run([], [])
        assert result.annotated_pages == []
        assert result.extractions == []

    def test_empty_kb(self):
        ontology = Ontology([Predicate("genre", range_kind="string")])
        kb = KnowledgeBase(ontology)
        pipeline = CeresPipeline(kb, CeresConfig(min_cluster_size=1))
        docs = [
            parse_html(f"<html><body><h1>Page {i}</h1><p>Drama</p></body></html>")
            for i in range(5)
        ]
        result = pipeline.run(docs, docs)
        assert result.annotated_pages == []
        assert result.extractions == []

    def test_kb_with_no_matching_pages(self):
        pipeline = CeresPipeline(tiny_kb(), CeresConfig(min_cluster_size=1))
        docs = [
            parse_html(
                f"<html><body><h1>Unrelated {i}</h1><p>Completely different</p></body></html>"
            )
            for i in range(5)
        ]
        result = pipeline.run(docs, docs)
        assert result.extractions == []

    def test_pages_with_no_text(self):
        pipeline = CeresPipeline(tiny_kb(), CeresConfig(min_cluster_size=1))
        docs = [parse_html("<html><body><div></div></body></html>") for _ in range(4)]
        result = pipeline.run(docs, docs)
        assert result.extractions == []

    def test_single_page_site(self):
        pipeline = CeresPipeline(tiny_kb(), CeresConfig(min_cluster_size=1))
        doc = parse_html(
            "<html><body><h1>Some Known Film</h1><p>Drama</p></body></html>"
        )
        # One page cannot satisfy the informativeness filter (3 annotations
        # from one genre fact) — pipeline must return cleanly.
        result = pipeline.run([doc], [doc])
        assert result.extractions == []

    def test_adversarial_entity_names(self):
        """KB names containing markup metacharacters must not break matching."""
        ontology = Ontology([Predicate("genre", range_kind="string", multi_valued=True)])
        kb = KnowledgeBase(ontology)
        kb.add_entity(Entity("f1", 'Film <script> & "Quotes"', "film"))
        for g in ("A", "B", "C"):
            kb.add_fact("f1", "genre", Value.literal(f"Genre {g} Word"))
        import html as html_lib

        name = html_lib.escape('Film <script> & "Quotes"')
        docs = [
            parse_html(
                f"<html><body><h1>{name}</h1>"
                "<p>Genre A Word</p><p>Genre B Word</p><p>Genre C Word</p>"
                f"<p>filler {i}</p></body></html>"
            )
            for i in range(4)
        ]
        pipeline = CeresPipeline(kb, CeresConfig(min_cluster_size=1, max_pages_per_topic=10))
        result = pipeline.annotate(docs)
        # The escaped name round-trips through the parser and matches.
        assert result.annotated_pages
