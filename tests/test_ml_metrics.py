"""Tests for repro.ml.metrics (PRF containers)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.ml.metrics import PRF, f1_score, mean_prf

counts = st.integers(0, 1000)


class TestF1Score:
    def test_harmonic_mean(self):
        assert f1_score(1.0, 1.0) == 1.0
        assert f1_score(0.5, 0.5) == 0.5
        assert abs(f1_score(1.0, 0.5) - 2 / 3) < 1e-12

    def test_zero(self):
        assert f1_score(0.0, 0.0) == 0.0


class TestPRF:
    def test_precision_recall(self):
        score = PRF(tp=8, fp=2, fn=8)
        assert score.precision == 0.8
        assert score.recall == 0.5
        assert abs(score.f1 - f1_score(0.8, 0.5)) < 1e-12

    def test_empty_counts(self):
        score = PRF()
        assert score.precision == 0.0
        assert score.recall == 0.0
        assert score.f1 == 0.0
        assert not score.defined

    def test_defined(self):
        assert PRF(fp=1).defined
        assert PRF(fn=1).defined

    def test_addition(self):
        total = PRF(1, 2, 3) + PRF(4, 5, 6)
        assert (total.tp, total.fp, total.fn) == (5, 7, 9)

    def test_inplace_addition(self):
        total = PRF(1, 1, 1)
        total += PRF(1, 0, 0)
        assert total.tp == 2

    def test_as_tuple(self):
        score = PRF(tp=1, fp=0, fn=0)
        assert score.as_tuple() == (1.0, 1.0, 1.0)

    def test_repr(self):
        assert "P=" in repr(PRF(1, 1, 1))

    @given(counts, counts, counts)
    def test_bounds_property(self, tp, fp, fn):
        score = PRF(tp, fp, fn)
        assert 0.0 <= score.precision <= 1.0
        assert 0.0 <= score.recall <= 1.0
        assert 0.0 <= score.f1 <= 1.0
        eps = 1e-9
        assert (
            min(score.precision, score.recall) - eps
            <= score.f1
            <= max(score.precision, score.recall) + eps
        ) or score.f1 == 0.0


class TestMeanPRF:
    def test_macro_average(self):
        scores = [PRF(tp=10, fp=0, fn=0), PRF(tp=0, fp=10, fn=10)]
        precision, recall, f1 = mean_prf(scores)
        assert precision == 0.5
        assert recall == 0.5

    def test_skips_undefined(self):
        scores = [PRF(tp=10, fp=0, fn=0), PRF()]
        assert mean_prf(scores) == (1.0, 1.0, 1.0)

    def test_all_undefined(self):
        assert mean_prf([PRF(), PRF()]) == (0.0, 0.0, 0.0)
        assert mean_prf([]) == (0.0, 0.0, 0.0)
