"""Tests for repro.kb: triples, ontology, literals, and the store."""

import pytest

from repro.kb.literals import date_variants, literal_variants, number_variants
from repro.kb.ontology import NAME_PREDICATE, OTHER_LABEL, Ontology, Predicate
from repro.kb.store import KnowledgeBase
from repro.kb.triple import Entity, Triple, Value


def movie_ontology() -> Ontology:
    return Ontology(
        [
            Predicate("directed_by", domain="film", range_kind="entity"),
            Predicate("has_cast_member", domain="film", range_kind="entity", multi_valued=True),
            Predicate("genre", domain="film", range_kind="string", multi_valued=True),
            Predicate("release_date", domain="film", range_kind="date"),
        ]
    )


def small_kb() -> KnowledgeBase:
    kb = KnowledgeBase(movie_ontology())
    kb.add_entity(Entity("f1", "Do the Right Thing", "film"))
    kb.add_entity(Entity("p1", "Spike Lee", "person"))
    kb.add_entity(Entity("p2", "Danny Aiello", "person"))
    kb.add_fact("f1", "directed_by", Value.entity("p1"))
    kb.add_fact("f1", "has_cast_member", Value.entity("p1"))
    kb.add_fact("f1", "has_cast_member", Value.entity("p2"))
    kb.add_fact("f1", "genre", Value.literal("Drama"))
    kb.add_fact("f1", "release_date", Value.literal("1989-06-30"))
    return kb


class TestValue:
    def test_entity_key(self):
        assert Value.entity("e9").key == ("e", "e9")

    def test_literal_key_normalized(self):
        assert Value.literal("Drama!").key == ("l", "drama")

    def test_kinds(self):
        assert Value.entity("x").is_entity
        assert not Value.literal("x").is_entity


class TestOntology:
    def test_contains(self):
        ontology = movie_ontology()
        assert "directed_by" in ontology
        assert "unknown" not in ontology

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            Ontology([Predicate("a"), Predicate("a")])

    def test_multi_valued(self):
        assert movie_ontology().multi_valued() == {"has_cast_member", "genre"}

    def test_merged(self):
        extra = Ontology([Predicate("new_pred"), Predicate("directed_by", domain="x")])
        merged = movie_ontology().merged_with(extra)
        assert "new_pred" in merged
        # First definition wins.
        assert merged.get("directed_by").domain == "film"

    def test_names_order(self):
        assert movie_ontology().names()[0] == "directed_by"

    def test_constants(self):
        assert NAME_PREDICATE == "name"
        assert OTHER_LABEL == "OTHER"


class TestLiterals:
    def test_date_variants(self):
        variants = date_variants("1989-06-30")
        assert "June 30, 1989" in variants
        assert "30 June 1989" in variants
        assert "1989-06-30" in variants

    def test_invalid_date_passthrough(self):
        assert date_variants("1989-13-45") == ["1989-13-45"]
        assert date_variants("not a date") == ["not a date"]

    def test_number_variants(self):
        variants = number_variants("240")
        assert "240 lbs" in variants

    def test_number_grouping(self):
        assert "1,234" in number_variants("1234")

    def test_non_number_passthrough(self):
        assert number_variants("6'7\"") == ["6'7\""]

    def test_dispatch(self):
        assert len(literal_variants("1989-06-30", "date")) > 1
        assert literal_variants("Drama", "string") == ["Drama"]


class TestKnowledgeBase:
    def test_len(self):
        assert len(small_kb()) == 5

    def test_triples_for_subject(self):
        kb = small_kb()
        predicates = {t.predicate for t in kb.triples_for_subject("f1")}
        assert predicates == {"directed_by", "has_cast_member", "genre", "release_date"}
        assert kb.triples_for_subject("nope") == []

    def test_object_keys(self):
        kb = small_kb()
        keys = kb.object_keys("f1")
        assert ("e", "p1") in keys
        assert ("e", "p2") in keys
        assert ("l", "drama") in keys

    def test_entity_lookup_by_text(self):
        kb = small_kb()
        assert kb.entity_ids_for_text("spike lee") == {"p1"}
        assert kb.entity_ids_for_text("Lee, Spike") == {"p1"}

    def test_value_keys_for_date_variant(self):
        kb = small_kb()
        keys = kb.value_keys_for_text("June 30, 1989")
        assert ("l", "1989 06 30") in keys

    def test_alias_matching(self):
        kb = small_kb()
        kb.add_entity(Entity("f2", "La Strada", "film", aliases=("The Road",)))
        assert kb.entity_ids_for_text("The Road") == {"f2"}

    def test_unknown_subject_rejected(self):
        kb = small_kb()
        with pytest.raises(KeyError):
            kb.add_fact("ghost", "genre", Value.literal("Drama"))

    def test_unknown_predicate_rejected(self):
        kb = small_kb()
        with pytest.raises(KeyError):
            kb.add_fact("f1", "invented", Value.literal("x"))

    def test_duplicate_entity_ignored(self):
        kb = small_kb()
        kb.add_entity(Entity("p1", "Different Name", "person"))
        assert kb.entity("p1").name == "Spike Lee"

    def test_entities_of_type(self):
        kb = small_kb()
        assert set(kb.entities_of_type("person")) == {"p1", "p2"}
        assert kb.entities_of_type("alien") == []

    def test_object_surfaces_entity(self):
        kb = small_kb()
        triple = next(t for t in kb.triples if t.predicate == "directed_by")
        assert kb.object_surfaces(triple) == ["Spike Lee"]

    def test_object_surfaces_date(self):
        kb = small_kb()
        triple = next(t for t in kb.triples if t.predicate == "release_date")
        assert "June 30, 1989" in kb.object_surfaces(triple)

    def test_frequent_strings(self):
        kb = small_kb()
        # Add "Drama" as genre of many films.
        for i in range(10):
            kb.add_entity(Entity(f"x{i}", f"Film Number {i}", "film"))
            kb.add_fact(f"x{i}", "genre", Value.literal("Drama"))
        frequent = kb.frequent_strings(min_count=5)
        assert "drama" in frequent
        assert "spike lee" not in frequent

    def test_predicate_counts(self):
        counts = small_kb().predicate_counts()
        assert counts["has_cast_member"] == 2
        assert counts["directed_by"] == 1

    def test_triple_repr(self):
        triple = Triple("f1", "genre", Value.literal("Drama"))
        assert "genre" in repr(triple)
