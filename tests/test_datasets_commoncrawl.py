"""Tests for repro.datasets.commoncrawl (long-tail multi-lingual sites)."""

import pytest

from repro.datasets.commoncrawl import (
    CCSiteConfig,
    DEFAULT_SITES,
    generate_commoncrawl,
)

SMALL_SITES = (
    CCSiteConfig("cleanen", "General", "en", 10, 0.8),
    CCSiteConfig("italiano", "Italian films", "it", 8, 0.5),
    CCSiteConfig(
        "allgenre", "Hazard site", "en", 6, 0.5, hazards=frozenset({"all_genres"})
    ),
    CCSiteConfig(
        "conflate", "Hazard site", "en", 6, 0.5,
        hazards=frozenset({"role_conflation"}),
    ),
    CCSiteConfig(
        "chartsonly", "Charts", "en", 0, 0.0,
        hazards=frozenset({"charts_only"}), n_noise_pages=5,
    ),
    CCSiteConfig(
        "mixed", "Mixed templates", "en", 6, 0.5,
        hazards=frozenset({"mixed_templates"}), n_noise_pages=4,
    ),
)


@pytest.fixture(scope="module")
def dataset():
    return generate_commoncrawl(seed=0, sites=SMALL_SITES)


class TestGeneration:
    def test_site_roster(self, dataset):
        assert [s.name for s in dataset.sites] == [c.name for c in SMALL_SITES]

    def test_page_counts(self, dataset):
        by_name = {s.name: s for s in dataset.sites}
        assert len(by_name["cleanen"].pages) == 10
        assert len(by_name["chartsonly"].pages) == 5  # noise pages only
        assert len(by_name["mixed"].pages) == 10  # 6 detail + 4 noise

    def test_alignment(self, dataset):
        for site in dataset.sites:
            for page in site.pages:
                _ = page.document

    def test_default_roster_generates(self):
        # Tiny smoke test over the first few default sites.
        dataset = generate_commoncrawl(seed=0, sites=DEFAULT_SITES[:3])
        assert len(dataset.sites) == 3

    def test_deterministic(self):
        a = generate_commoncrawl(seed=2, sites=SMALL_SITES[:2])
        b = generate_commoncrawl(seed=2, sites=SMALL_SITES[:2])
        assert [p.html for s in a.sites for p in s.pages] == [
            p.html for s in b.sites for p in s.pages
        ]


class TestKBOverlap:
    def test_overlap_rate_respected(self, dataset):
        kb = dataset.kb
        by_name = {s.name: s for s in dataset.sites}
        clean = by_name["cleanen"]
        in_kb = sum(
            1 for p in clean.pages if p.topic_entity_id in kb.entities
        )
        assert in_kb / len(clean.pages) >= 0.6

    def test_tail_films_absent_from_kb(self, dataset):
        kb = dataset.kb
        all_topics = {
            p.topic_entity_id
            for s in dataset.sites
            for p in s.pages
            if p.topic_entity_id
        }
        assert any(topic not in kb.entities for topic in all_topics)


class TestHazards:
    def test_all_genres_hazard(self, dataset):
        from repro.datasets.names import GENRES
        site = next(s for s in dataset.sites if s.name == "allgenre")
        page = site.pages[0]
        untruthful_genres = [
            e.text for _, e in page.aligned()
            if e.predicate is None and e.text in GENRES
        ]
        assert len(untruthful_genres) == len(GENRES)

    def test_role_conflation_hazard(self, dataset):
        site = next(s for s in dataset.sites if s.name == "conflate")
        for page in site.pages:
            # No directed_by/written_by/has_cast_member truth at all.
            assert "directed_by" not in page.truth.objects
            assert "has_cast_member" not in page.truth.objects

    def test_charts_only_site_has_no_detail_pages(self, dataset):
        site = next(s for s in dataset.sites if s.name == "chartsonly")
        assert all(p.topic_entity_id is None for p in site.pages)

    def test_language_labels_used(self, dataset):
        site = next(s for s in dataset.sites if s.name == "italiano")
        texts = {e.text for p in site.pages[:2] for _, e in p.aligned()}
        assert any("Regia" in t for t in texts)
