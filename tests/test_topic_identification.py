"""Tests for repro.core.annotation.topic (Algorithm 1)."""

from repro.core.annotation.topic import TopicIdentifier
from repro.core.config import CeresConfig
from repro.dom.parser import parse_html
from repro.kb.ontology import Ontology, Predicate
from repro.kb.store import KnowledgeBase
from repro.kb.triple import Entity, Value


def film_kb(n_films: int = 6) -> KnowledgeBase:
    ontology = Ontology(
        [
            Predicate("directed_by", range_kind="entity"),
            Predicate("genre", range_kind="string", multi_valued=True),
        ]
    )
    kb = KnowledgeBase(ontology)
    for i in range(n_films):
        kb.add_entity(Entity(f"f{i}", f"Film Number {i} Saga", "film"))
        kb.add_entity(Entity(f"d{i}", f"Director Name {i}", "person"))
        kb.add_fact(f"f{i}", "directed_by", Value.entity(f"d{i}"))
        kb.add_fact(f"f{i}", "genre", Value.literal(f"GenreWord{i % 3}"))
    return kb


def film_page(i: int, with_help: bool = False) -> str:
    help_div = "<div class='help'>Help</div>" if with_help else ""
    return (
        f"<html><body>{help_div}"
        f"<div class='main'><h1>Film Number {i} Saga</h1>"
        f"<div class='row'><span>Director</span><span>Director Name {i}</span></div>"
        f"<div class='row'><span>Genre</span><span>GenreWord{i % 3}</span></div>"
        f"</div></body></html>"
    )


class TestScoreEntitiesForPage:
    def test_topic_scores_highest(self):
        kb = film_kb()
        identifier = TopicIdentifier(kb, CeresConfig())
        scores = identifier.score_entities_for_page(parse_html(film_page(0)))
        assert scores
        best = max(scores, key=scores.get)
        assert best == "f0"

    def test_no_matches_no_scores(self):
        kb = film_kb()
        identifier = TopicIdentifier(kb, CeresConfig())
        doc = parse_html("<html><body><p>nothing relevant</p></body></html>")
        assert identifier.score_entities_for_page(doc) == {}

    def test_entity_without_facts_not_scored(self):
        kb = film_kb()
        kb.add_entity(Entity("lonely", "Lonely Entity Name", "film"))
        identifier = TopicIdentifier(kb, CeresConfig())
        doc = parse_html(
            "<html><body><h1>Lonely Entity Name</h1><p>GenreWord0</p></body></html>"
        )
        scores = identifier.score_entities_for_page(doc)
        assert "lonely" not in scores


class TestIdentify:
    def test_identifies_all_topics(self):
        kb = film_kb()
        identifier = TopicIdentifier(kb, CeresConfig())
        docs = [parse_html(film_page(i)) for i in range(6)]
        topics = identifier.identify(docs)
        assert len(topics) == 6
        for i, topic in topics.items():
            assert topic.entity_id == f"f{i}"
            assert topic.node.text == f"Film Number {i} Saga"

    def test_topic_node_at_dominant_path(self):
        kb = film_kb()
        identifier = TopicIdentifier(kb, CeresConfig())
        docs = [parse_html(film_page(i)) for i in range(6)]
        topics = identifier.identify(docs)
        paths = {t.node.xpath for t in topics.values()}
        assert len(paths) == 1  # all topics at the same template position

    def test_unknown_topic_page_gets_none(self):
        kb = film_kb(n_films=4)
        identifier = TopicIdentifier(kb, CeresConfig())
        # Page 5's film is not in the KB.
        docs = [parse_html(film_page(i)) for i in range(4)]
        docs.append(parse_html(film_page(99)))
        topics = identifier.identify(docs)
        assert 4 not in topics
        assert len(topics) == 4

    def test_uniqueness_filter(self):
        """An entity matching on every page must not become everyone's topic."""
        kb = film_kb(n_films=8)
        # "Help" as a film entity with facts that co-occur on all pages.
        kb.add_entity(Entity("help", "Help", "film"))
        kb.add_fact("help", "genre", Value.literal("GenreWord0"))
        kb.add_fact("help", "genre", Value.literal("GenreWord1"))
        kb.add_fact("help", "genre", Value.literal("GenreWord2"))
        identifier = TopicIdentifier(
            kb, CeresConfig(max_pages_per_topic=3)
        )
        docs = [parse_html(film_page(i, with_help=True)) for i in range(8)]
        topics = identifier.identify(docs)
        assert all(t.entity_id != "help" for t in topics.values())

    def test_empty_input(self):
        kb = film_kb()
        identifier = TopicIdentifier(kb, CeresConfig())
        assert identifier.identify([]) == {}

    def test_stoplisted_entity_not_topic(self):
        kb = film_kb()
        # Make one film's name hyper-frequent in the KB.
        kb.add_entity(Entity("hub", "Ubiquitous String", "film"))
        for i in range(40):
            kb.add_entity(Entity(f"x{i}", f"Other Subject {i} Title", "film"))
            kb.add_fact(f"x{i}", "genre", Value.literal("Ubiquitous String"))
        identifier = TopicIdentifier(kb, CeresConfig(stoplist_min_count=30))
        assert not identifier._candidate_allowed("hub")

    def test_low_information_name_not_candidate(self):
        kb = film_kb()
        kb.add_entity(Entity("year", "1989", "film"))
        identifier = TopicIdentifier(kb, CeresConfig())
        assert not identifier._candidate_allowed("year")
