"""Tests for repro.baselines.vertex (Vertex++ wrapper induction)."""

from repro.baselines.vertex import TrainingPage, VertexPlusPlus, anchor_text
from repro.dom.parser import parse_html


def site_page(i: int, n_genres: int = 2) -> str:
    genres = "".join(f"<li class='g'>Genre {i} {j}</li>" for j in range(n_genres))
    return (
        "<html><body><div class='main'>"
        f"<h1>Title {i}</h1>"
        f"<div class='row'><span>Director:</span><span>Director {i}</span></div>"
        f"<div class='row'><span>Rating:</span><span>PG-{i}</span></div>"
        f"<ul class='genres'>{genres}</ul>"
        "</div></body></html>"
    )


def training_pages(indices, n_genres=2):
    pages = []
    for i in indices:
        doc = parse_html(site_page(i, n_genres))
        fields = doc.text_fields()
        annotations = {
            "name": [fields[0]],
            "directed_by": [next(f for f in fields if f.text == f"Director {i}")],
            "mpaa_rating": [next(f for f in fields if f.text == f"PG-{i}")],
            "genre": [f for f in fields if f.text.startswith(f"Genre {i} ")],
        }
        pages.append(TrainingPage(doc, annotations))
    return pages


class TestAnchorText:
    def test_row_label(self):
        doc = parse_html(site_page(1))
        node = next(f for f in doc.text_fields() if f.text == "Director 1")
        assert anchor_text(node) == "Director:"

    def test_no_anchor_for_first_field(self):
        doc = parse_html("<html><body><div><p>first</p></div></body></html>")
        node = doc.text_fields()[0]
        assert anchor_text(node) is None


class TestVertexPlusPlus:
    def test_learns_and_extracts(self):
        model = VertexPlusPlus().fit(training_pages([0, 1]))
        extractions = model.extract_page(parse_html(site_page(7)))
        by_predicate = {}
        for e in extractions:
            by_predicate.setdefault(e.predicate, []).append(e.object)
        assert by_predicate["directed_by"] == ["Director 7"]
        assert by_predicate["mpaa_rating"] == ["PG-7"]
        assert sorted(by_predicate["genre"]) == ["Genre 7 0", "Genre 7 1"]

    def test_subject_from_name_rule(self):
        model = VertexPlusPlus().fit(training_pages([0, 1]))
        extractions = model.extract_page(parse_html(site_page(3)))
        assert all(e.subject == "Title 3" for e in extractions)

    def test_generalizes_list_length(self):
        # Trained on 2-genre pages; extracts from a 5-genre page.
        model = VertexPlusPlus().fit(training_pages([0, 1], n_genres=3))
        extractions = model.extract_page(parse_html(site_page(9, n_genres=5)))
        genres = [e.object for e in extractions if e.predicate == "genre"]
        assert len(genres) == 5

    def test_anchors_disambiguate_same_shape(self):
        """Director and Rating rows share an XPath shape; anchors separate."""
        model = VertexPlusPlus().fit(training_pages([0, 1]))
        extractions = model.extract_page(parse_html(site_page(5)))
        directors = [e.object for e in extractions if e.predicate == "directed_by"]
        ratings = [e.object for e in extractions if e.predicate == "mpaa_rating"]
        assert directors == ["Director 5"]
        assert ratings == ["PG-5"]

    def test_no_name_match_no_extractions(self):
        model = VertexPlusPlus().fit(training_pages([0]))
        doc = parse_html("<html><body><p>unrelated page</p></body></html>")
        assert model.extract_page(doc) == []

    def test_extract_multiple_pages(self):
        model = VertexPlusPlus().fit(training_pages([0, 1]))
        docs = [parse_html(site_page(i)) for i in range(4)]
        extractions = model.extract(docs)
        assert {e.page_index for e in extractions} == {0, 1, 2, 3}

    def test_single_training_page(self):
        model = VertexPlusPlus().fit(training_pages([0]))
        extractions = model.extract_page(parse_html(site_page(2)))
        assert any(e.predicate == "directed_by" for e in extractions)

    def test_no_duplicate_extractions(self):
        model = VertexPlusPlus().fit(training_pages([0, 1]))
        extractions = model.extract_page(parse_html(site_page(4)))
        keys = [(e.predicate, e.node.xpath) for e in extractions]
        assert len(keys) == len(set(keys))
