"""Tests for repro.baselines.ceres_baseline (pairwise distant supervision)."""

import pytest

from repro.baselines.ceres_baseline import CeresBaseline, MemoryBudgetExceeded
from repro.core.config import CeresConfig
from repro.dom.parser import parse_html
from repro.kb.ontology import Ontology, Predicate
from repro.kb.store import KnowledgeBase
from repro.kb.triple import Entity, Value


def build_kb(n: int = 6) -> KnowledgeBase:
    ontology = Ontology([Predicate("directed_by", range_kind="entity")])
    kb = KnowledgeBase(ontology)
    for i in range(n):
        kb.add_entity(Entity(f"f{i}", f"Film Alpha {i} Beta", "film"))
        kb.add_entity(Entity(f"d{i}", f"Director Gamma {i}", "person"))
        kb.add_fact(f"f{i}", "directed_by", Value.entity(f"d{i}"))
    return kb


def film_page(i: int) -> str:
    return (
        "<html><body><div class='main'>"
        f"<h2 class='t'>Film Alpha {i} Beta</h2>"
        f"<div class='d'><span>By</span><span class='dv'>Director Gamma {i}</span></div>"
        "</div></body></html>"
    )


class TestAnnotation:
    def test_pairs_found(self):
        kb = build_kb()
        baseline = CeresBaseline(kb, CeresConfig())
        docs = [parse_html(film_page(i)) for i in range(4)]
        examples = baseline.annotate(docs)
        positives = [e for e in examples if e.label == "directed_by"]
        assert len(positives) == 4
        for example in positives:
            assert "Film Alpha" in example.subject_node.text
            assert "Director Gamma" in example.object_node.text

    def test_negative_pairs_sampled(self):
        kb = build_kb()
        baseline = CeresBaseline(kb, CeresConfig())
        docs = [parse_html(film_page(i)) for i in range(4)]
        examples = baseline.annotate(docs)
        assert any(e.label == "OTHER" for e in examples)

    def test_budget_exceeded(self):
        kb = build_kb()
        baseline = CeresBaseline(kb, CeresConfig(), pair_budget=0)
        docs = [parse_html(film_page(0))]
        with pytest.raises(MemoryBudgetExceeded):
            baseline.annotate(docs)


class TestFitExtract:
    def test_fit_and_extract(self):
        kb = build_kb(8)
        baseline = CeresBaseline(kb, CeresConfig())
        train = [parse_html(film_page(i)) for i in range(6)]
        baseline.fit(train)
        evaluation = [parse_html(film_page(i)) for i in (6, 7)]
        extractions = baseline.extract(evaluation)
        assert extractions
        for extraction in extractions:
            assert extraction.predicate == "directed_by"

    def test_unfitted_extract_raises(self):
        kb = build_kb()
        baseline = CeresBaseline(kb, CeresConfig())
        with pytest.raises(RuntimeError):
            baseline.extract_page(parse_html(film_page(0)))

    def test_no_examples_raises(self):
        kb = build_kb()
        baseline = CeresBaseline(kb, CeresConfig())
        docs = [parse_html("<html><body><p>nothing</p></body></html>")]
        with pytest.raises(ValueError):
            baseline.fit(docs)

    def test_extraction_pair_cap(self):
        kb = build_kb(8)
        baseline = CeresBaseline(kb, CeresConfig())
        baseline.fit([parse_html(film_page(i)) for i in range(6)])
        with pytest.raises(MemoryBudgetExceeded):
            baseline.extract_page(
                parse_html(film_page(7)), max_pairs_per_page=1
            )

    def test_page_without_entities(self):
        kb = build_kb(8)
        baseline = CeresBaseline(kb, CeresConfig())
        baseline.fit([parse_html(film_page(i)) for i in range(6)])
        doc = parse_html("<html><body><p>no entities at all</p></body></html>")
        assert baseline.extract_page(doc) == []
