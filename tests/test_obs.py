"""repro.obs: spans, mergeable metrics, and the zero-overhead off mode."""

from __future__ import annotations

import io
import json

import pytest

from repro import obs
from repro.obs import MetricsRegistry, Tracer, merge_snapshots, write_spans_jsonl
from repro.obs.metrics import NULL_REGISTRY
from repro.obs.tracer import NULL_TRACER


# -- tracer -----------------------------------------------------------------


def test_span_nesting_parent_links_and_order():
    tracer = Tracer()
    with tracer.span("outer", site="s"):
        with tracer.span("middle"):
            with tracer.span("inner"):
                pass
        with tracer.span("sibling"):
            pass
    spans = tracer.export()
    # Spans land at exit time: children strictly before their parents.
    assert [s["name"] for s in spans] == ["inner", "middle", "sibling", "outer"]
    by_name = {s["name"]: s for s in spans}
    assert by_name["outer"]["parent_id"] is None
    assert by_name["middle"]["parent_id"] == by_name["outer"]["span_id"]
    assert by_name["inner"]["parent_id"] == by_name["middle"]["span_id"]
    assert by_name["sibling"]["parent_id"] == by_name["outer"]["span_id"]
    assert by_name["outer"]["attrs"] == {"site": "s"}
    for span in spans:
        assert span["duration"] >= 0.0
        assert span["start"] > 0.0


def test_span_set_attaches_attrs():
    tracer = Tracer()
    with tracer.span("stage.extract", pages=3) as span:
        span.set(extractions=7)
    (record,) = tracer.export()
    assert record["attrs"] == {"pages": 3, "extractions": 7}


def test_span_jsonl_round_trip():
    tracer = Tracer()
    with tracer.span("a", note="né"):
        with tracer.span("b"):
            pass
    sink = io.StringIO()
    assert write_spans_jsonl(tracer.export(), sink) == 2
    lines = sink.getvalue().splitlines()
    assert len(lines) == 2
    decoded = [json.loads(line) for line in lines]
    assert decoded == tracer.export()


def test_absorb_keeps_foreign_spans_and_links():
    worker = Tracer()
    with worker.span("site.run"):
        with worker.span("stage.train"):
            pass
    parent = Tracer()
    with parent.span("corpus"):
        pass
    parent.absorb(worker.export())
    names = {s["name"] for s in parent.export()}
    assert names == {"corpus", "site.run", "stage.train"}
    span_ids = [s["span_id"] for s in parent.export()]
    assert len(span_ids) == len(set(span_ids))


# -- metrics ----------------------------------------------------------------


def _registry_a() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.inc("pipeline.pages", 10)
    reg.inc("runner.sites_ok")
    reg.observe("stage.train_seconds", 0.002)
    reg.observe("stage.train_seconds", 4.0)
    return reg


def _registry_b() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.inc("pipeline.pages", 5)
    reg.inc("scoring.batches", 2)
    reg.observe("stage.train_seconds", 0.3)
    reg.observe("scoring.predict_seconds", 0.001)
    return reg


def test_merge_commutative_and_associative():
    a, b = _registry_a().snapshot(), _registry_b().snapshot()
    c = MetricsRegistry()
    c.inc("pipeline.pages", 1)
    c.observe("stage.train_seconds", 100.0)  # overflow bucket
    c = c.snapshot()

    ab = merge_snapshots([a, b])
    ba = merge_snapshots([b, a])
    assert ab == ba
    assert merge_snapshots([ab, c]) == merge_snapshots([a, merge_snapshots([b, c])])

    assert ab["counters"]["pipeline.pages"] == 15
    hist = ab["histograms"]["stage.train_seconds"]
    assert hist["count"] == 3
    assert hist["min"] == 0.002
    assert hist["max"] == 4.0
    assert sum(hist["counts"]) == 3


def test_merge_snapshot_is_json_round_trippable():
    snapshot = _registry_a().snapshot()
    revived = json.loads(json.dumps(snapshot))
    merged = MetricsRegistry()
    merged.merge_snapshot(revived)
    assert merged.snapshot() == snapshot


def test_histogram_bucket_mismatch_raises():
    reg = MetricsRegistry()
    reg.histogram("x_seconds", (0.1, 1.0))
    with pytest.raises(ValueError):
        reg.histogram("x_seconds", (0.5, 5.0))
    # Merging a snapshot whose buckets differ must fail too, not corrupt.
    other = MetricsRegistry()
    other.observe("x_seconds", 0.2, buckets=(0.5, 5.0))
    with pytest.raises(ValueError):
        reg.merge_snapshot(other.snapshot())


def test_timer_observes_and_exposes_elapsed():
    reg = MetricsRegistry()
    with reg.timer("t_seconds") as timing:
        pass
    assert timing.elapsed >= 0.0
    snap = reg.snapshot()
    assert snap["histograms"]["t_seconds"]["count"] == 1


def test_record_cache_folds_counters():
    from repro.runtime.cache import LRUCache

    cache: LRUCache[str, int] = LRUCache(2, name="feature_registry")
    cache.put("a", 1)
    cache.get("a")
    cache.get("missing")
    reg = MetricsRegistry()
    reg.record_cache(cache.stats())
    counters = reg.snapshot()["counters"]
    assert counters["cache.feature_registry.hits"] == 1
    assert counters["cache.feature_registry.misses"] == 1
    assert counters["cache.feature_registry.evictions"] == 0


# -- disabled mode ----------------------------------------------------------


def test_disabled_mode_records_nothing_and_allocates_nothing():
    assert not obs.enabled()
    assert obs.tracer() is NULL_TRACER
    assert obs.metrics() is NULL_REGISTRY

    # Shared singletons: repeated hot-path calls return identical objects.
    assert obs.span("a") is obs.span("b")
    assert obs.timer("x") is obs.timer("y")
    assert obs.stage("s") is obs.stage("t")
    assert obs.metrics().counter("c1") is obs.metrics().counter("c2")

    with obs.span("hot", k=1) as span:
        span.set(more=2)
    with obs.timer("hot_seconds"):
        pass
    with obs.stage("stage.hot", pages=9) as stage:
        stage.set(extractions=1)
    obs.metrics().inc("anything", 5)
    obs.metrics().observe("h", 1.0)
    obs.metrics().record_cache({"name": "x", "hits": 1, "misses": 2, "evictions": 0})
    obs.tracer().absorb([{"name": "foreign"}])
    obs.metrics().merge_snapshot(_registry_a().snapshot())

    # Output is empty on both instruments.
    assert obs.tracer().export() == []
    assert obs.metrics().snapshot() == {"counters": {}, "histograms": {}}


def test_enable_disable_round_trip():
    tracer, registry = obs.enable()
    try:
        assert obs.tracing_enabled() and obs.metrics_enabled()
        assert obs.tracer() is tracer
        assert obs.metrics() is registry
        with obs.stage("stage.x"):
            pass
        assert [s["name"] for s in tracer.export()] == ["stage.x"]
        assert "stage.x_seconds" in registry.snapshot()["histograms"]
    finally:
        obs.disable()
    assert obs.tracer() is NULL_TRACER
    assert obs.metrics() is NULL_REGISTRY


def test_scoped_installs_and_restores():
    obs.enable(tracing=False, metrics=True)
    try:
        outer = obs.metrics()
        outer.inc("outer.count")
        with obs.scoped(tracing=True, metrics=True) as (tracer, registry):
            assert obs.metrics() is registry
            assert obs.tracer() is tracer
            assert registry is not outer
            obs.metrics().inc("inner.count")
            with obs.span("inner.span"):
                pass
        # Prior state restored: the outer registry, the null tracer.
        assert obs.metrics() is outer
        assert obs.tracer() is NULL_TRACER
        assert "inner.count" not in outer.snapshot()["counters"]
        assert outer.snapshot()["counters"]["outer.count"] == 1
    finally:
        obs.disable()


def test_stage_emits_span_and_histogram_with_same_region_name():
    with obs.scoped(tracing=True, metrics=True) as (tracer, registry):
        with obs.stage("stage.annotate", pages=4) as stage:
            stage.set(annotations=2)
    (span,) = tracer.export()
    assert span["name"] == "stage.annotate"
    assert span["attrs"] == {"pages": 4, "annotations": 2}
    hist = registry.snapshot()["histograms"]["stage.annotate_seconds"]
    assert hist["count"] == 1
