"""Tests for repro.core.annotation.examples (Section 4.1)."""

import random

from repro.core.annotation.examples import (
    build_training_examples,
    list_exclusion_patterns,
)
from repro.core.annotation.types import AnnotatedPage, Annotation
from repro.core.config import CeresConfig
from repro.dom.parser import parse_html
from repro.kb.ontology import NAME_PREDICATE, OTHER_LABEL


def make_page() -> AnnotatedPage:
    html = (
        "<html><body>"
        "<h1>Topic Name Here</h1>"
        "<ul>"
        + "".join(f"<li>Value {i}</li>" for i in range(10))
        + "</ul>"
        "<div><p>noise one</p><p>noise two</p><p>noise three</p>"
        "<p>noise four</p><p>noise five</p><p>noise six</p></div>"
        "</body></html>"
    )
    doc = parse_html(html)
    fields = doc.text_fields()
    title = fields[0]
    list_items = fields[1:11]
    annotations = [
        Annotation("cast", list_items[0], ("e", "a"), "Value 0"),
        Annotation("cast", list_items[3], ("e", "b"), "Value 3"),
    ]
    return AnnotatedPage(0, doc, "topic", title, annotations)


class TestListExclusionPatterns:
    def test_pattern_found_for_list(self):
        page = make_page()
        patterns = list_exclusion_patterns(page)
        assert len(patterns) == 1
        assert any(index is None for _, index in patterns[0])

    def test_single_annotation_no_pattern(self):
        page = make_page()
        page.annotations = page.annotations[:1]
        assert list_exclusion_patterns(page) == []

    def test_identical_paths_no_wildcard_pattern(self):
        page = make_page()
        page.annotations = [page.annotations[0], page.annotations[0]]
        assert list_exclusion_patterns(page) == []


class TestBuildTrainingExamples:
    def test_positive_labels_present(self):
        page = make_page()
        examples = build_training_examples([page], CeresConfig())
        labels = [e.label for e in examples]
        assert labels.count("cast") == 2
        assert labels.count(NAME_PREDICATE) == 1

    def test_negative_ratio(self):
        page = make_page()
        config = CeresConfig(negatives_per_positive=3)
        examples = build_training_examples([page], config)
        n_pos = sum(1 for e in examples if e.label != OTHER_LABEL)
        n_neg = sum(1 for e in examples if e.label == OTHER_LABEL)
        assert n_pos == 3
        # 6 noise paragraphs are available; 3 * 3 = 9 wanted, capped at 6.
        assert n_neg == 6

    def test_list_members_excluded_from_negatives(self):
        page = make_page()
        examples = build_training_examples([page], CeresConfig())
        negative_texts = {e.node.text for e in examples if e.label == OTHER_LABEL}
        for i in range(10):
            assert f"Value {i}" not in negative_texts

    def test_without_exclusion_list_members_can_be_negatives(self):
        page = make_page()
        page.annotations = page.annotations[:1]  # no pattern derivable
        config = CeresConfig(negatives_per_positive=10)
        examples = build_training_examples([page], config, random.Random(0))
        negative_texts = {e.node.text for e in examples if e.label == OTHER_LABEL}
        assert any(text.startswith("Value") for text in negative_texts)

    def test_deterministic_given_seed(self):
        page = make_page()
        config = CeresConfig()
        a = build_training_examples([page], config, random.Random(1))
        b = build_training_examples([page], config, random.Random(1))
        assert [(e.label, e.node.text) for e in a] == [
            (e.label, e.node.text) for e in b
        ]

    def test_empty_pages(self):
        assert build_training_examples([], CeresConfig()) == []

    def test_positives_never_sampled_as_negatives(self):
        page = make_page()
        config = CeresConfig(negatives_per_positive=50)
        examples = build_training_examples([page], config)
        positive_ids = {
            id(e.node) for e in examples if e.label != OTHER_LABEL
        }
        for example in examples:
            if example.label == OTHER_LABEL:
                assert id(example.node) not in positive_ids
