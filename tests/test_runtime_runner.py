"""Corpus discovery and the parallel runner's failure isolation."""

import io
import json

import pytest

from repro.core.config import CeresConfig
from repro.kb.io import save_kb
from repro.datasets import generate_swde, seed_kb_for
from repro.runtime import (
    ModelRegistry,
    SiteSpec,
    discover_corpus,
    load_site_documents,
    run_corpus,
)


@pytest.fixture(scope="module")
def corpus_on_disk(tmp_path_factory):
    """Three healthy synthetic sites + one broken one, plus KB and manifest."""
    tmp = tmp_path_factory.mktemp("corpus")
    dataset = generate_swde("movie", n_sites=4, pages_per_site=14, seed=6)
    kb = seed_kb_for(dataset, 6)
    kb_path = tmp / "kb.json"
    save_kb(kb, kb_path)

    corpus_dir = tmp / "sites"
    corpus_dir.mkdir()
    site_names = []
    for site in dataset.sites[1:4]:
        site_dir = corpus_dir / site.name
        site_dir.mkdir()
        for index, page in enumerate(site.pages):
            (site_dir / f"page{index:03d}.html").write_text(page.html)
        site_names.append(site.name)

    # Injected failure: a listed site whose pages directory has no HTML.
    broken_dir = tmp / "broken"
    broken_dir.mkdir()
    (broken_dir / "README.txt").write_text("not a website")

    manifest = tmp / "manifest.jsonl"
    lines = [
        json.dumps({"site": name, "pages": str(corpus_dir / name)})
        for name in site_names
    ]
    lines.append(json.dumps({"site": "broken", "pages": str(broken_dir)}))
    manifest.write_text("\n".join(lines) + "\n")
    return tmp, kb_path, corpus_dir, manifest, sorted(site_names)


class TestDiscovery:
    def test_directory_of_directories(self, corpus_on_disk):
        _, _, corpus_dir, _, site_names = corpus_on_disk
        specs = discover_corpus(corpus_dir)
        assert [spec.site for spec in specs] == site_names
        for spec in specs:
            assert load_site_documents(spec.pages_dir)

    def test_directory_skips_non_site_children(self, corpus_on_disk, tmp_path):
        _, _, corpus_dir, _, site_names = corpus_on_disk
        specs = discover_corpus(corpus_dir)
        assert all(spec.site in site_names for spec in specs)

    def test_manifest(self, corpus_on_disk):
        _, _, _, manifest, site_names = corpus_on_disk
        specs = discover_corpus(manifest)
        assert [spec.site for spec in specs] == sorted(site_names + ["broken"])

    def test_manifest_relative_paths(self, tmp_path):
        (tmp_path / "pages").mkdir()
        (tmp_path / "pages" / "a.html").write_text("<html></html>")
        manifest = tmp_path / "m.jsonl"
        manifest.write_text(json.dumps({"site": "s", "pages": "pages"}) + "\n")
        (spec,) = discover_corpus(manifest)
        assert spec == SiteSpec("s", str(tmp_path / "pages"))

    def test_bad_manifest_line(self, tmp_path):
        manifest = tmp_path / "m.jsonl"
        manifest.write_text('{"site": "x"}\n')
        with pytest.raises(ValueError, match="bad manifest line"):
            discover_corpus(manifest)

    def test_duplicate_site_rejected(self, tmp_path):
        """Duplicate names race last-writer-wins on one registry artifact
        and interleave output rows under a single site label — reject."""
        manifest = tmp_path / "m.jsonl"
        manifest.write_text(
            "\n".join(
                [
                    json.dumps({"site": "imdb", "pages": "a"}),
                    json.dumps({"site": "other", "pages": "b"}),
                    "# comment lines do not shift the reported line numbers",
                    json.dumps({"site": "imdb", "pages": "c"}),
                ]
            )
            + "\n"
        )
        with pytest.raises(ValueError, match=r"m\.jsonl:4: duplicate site 'imdb'"):
            discover_corpus(manifest)
        with pytest.raises(ValueError, match="first defined on line 1"):
            discover_corpus(manifest)

    def test_duplicate_detection_is_exact_not_normalized(self, tmp_path):
        # Distinct names that differ only in case are two different sites.
        manifest = tmp_path / "m.jsonl"
        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        manifest.write_text(
            json.dumps({"site": "IMDb", "pages": "a"})
            + "\n"
            + json.dumps({"site": "imdb", "pages": "b"})
            + "\n"
        )
        specs = discover_corpus(manifest)
        assert [spec.site for spec in specs] == ["IMDb", "imdb"]

    def test_manifest_missing_pages_dir_rejected(self, tmp_path):
        """A manifest entry whose pages directory doesn't exist is a
        discovery-time error naming the manifest line — not a confusing
        worker-side FileNotFoundError minutes into the run."""
        (tmp_path / "real").mkdir()
        manifest = tmp_path / "m.jsonl"
        manifest.write_text(
            json.dumps({"site": "good", "pages": "real"})
            + "\n"
            + json.dumps({"site": "ghost", "pages": "missing"})
            + "\n"
        )
        with pytest.raises(
            ValueError,
            match=r"m\.jsonl:2: pages directory does not exist for site 'ghost'",
        ):
            discover_corpus(manifest)

    def test_missing_corpus(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            discover_corpus(tmp_path / "nope")

    def test_empty_directory(self, tmp_path):
        with pytest.raises(ValueError, match="no site subdirectories"):
            discover_corpus(tmp_path)

    def test_htm_and_uppercase_suffixes_accepted(self, tmp_path):
        """Crawls mix .html/.htm and uppercase suffixes; none may be
        silently dropped, and sort order stays name-stable."""
        site_dir = tmp_path / "mixed"
        site_dir.mkdir()
        for name in ("b.htm", "a.HTML", "c.html", "d.HTM"):
            (site_dir / name).write_text("<html><body>x</body></html>")
        (site_dir / "notes.txt").write_text("not a page")
        (site_dir / "sub.html").mkdir()  # a directory is never a page

        (spec,) = discover_corpus(tmp_path)
        assert spec.site == "mixed"
        documents = load_site_documents(site_dir)
        assert [d.url for d in documents] == ["a.HTML", "b.htm", "c.html", "d.HTM"]

    def test_htm_only_site_discovered(self, tmp_path):
        site_dir = tmp_path / "legacy"
        site_dir.mkdir()
        (site_dir / "index.htm").write_text("<html><body>x</body></html>")
        specs = discover_corpus(tmp_path)
        assert [spec.site for spec in specs] == ["legacy"]


class TestRunCorpus:
    def test_inline_with_failure_isolation(self, corpus_on_disk, tmp_path):
        _, kb_path, _, manifest, site_names = corpus_on_disk
        registry_root = tmp_path / "models"
        output = io.StringIO()
        progress = []
        reports = run_corpus(
            manifest,
            kb_path,
            registry_root,
            config=CeresConfig(),
            max_workers=1,
            output=output,
            log=progress.append,
        )
        assert len(reports) == len(site_names) + 1
        by_site = {report.site: report for report in reports}
        assert not by_site["broken"].ok
        assert "no .html/.htm files" in by_site["broken"].error
        assert by_site["broken"].traceback
        for name in site_names:
            assert by_site[name].ok, by_site[name].error
            assert by_site[name].n_extractions > 0

        # Per-site artifacts landed in the registry — but none for the
        # broken site.
        registry = ModelRegistry(registry_root)
        assert registry.sites() == site_names
        # Output rows are tagged with their site.
        rows = [json.loads(line) for line in output.getvalue().splitlines()]
        assert rows
        assert {row["site"] for row in rows} == set(site_names)
        assert sum(1 for _ in rows) == sum(r.n_extractions for r in reports)
        assert len(progress) == len(reports)
        assert any("FAILED" in line for line in progress)

    def test_process_pool_matches_inline(self, corpus_on_disk, tmp_path):
        _, kb_path, corpus_dir, _, site_names = corpus_on_disk
        inline_out, pooled_out = io.StringIO(), io.StringIO()
        inline = run_corpus(
            corpus_dir, kb_path, tmp_path / "inline",
            max_workers=1, output=inline_out,
        )
        pooled = run_corpus(
            corpus_dir, kb_path, tmp_path / "pooled",
            max_workers=2, output=pooled_out,
        )
        assert all(report.ok for report in inline)
        assert all(report.ok for report in pooled)

        def rows_sorted(buffer):
            return sorted(buffer.getvalue().splitlines())

        assert rows_sorted(inline_out) == rows_sorted(pooled_out)
        assert ModelRegistry(tmp_path / "pooled").sites() == site_names

    def test_no_registry_root(self, corpus_on_disk, tmp_path):
        _, kb_path, corpus_dir, _, _ = corpus_on_disk
        reports = run_corpus(corpus_dir, kb_path, None, max_workers=1)
        assert all(report.ok for report in reports)
        assert all(report.artifact_path is None for report in reports)

    def test_artifacts_serve_after_run(self, corpus_on_disk, tmp_path):
        """Registry artifacts written by the runner are directly servable."""
        from repro.runtime import ExtractionService

        _, kb_path, corpus_dir, _, site_names = corpus_on_disk
        registry_root = tmp_path / "models"
        output = io.StringIO()
        reports = run_corpus(
            corpus_dir, kb_path, registry_root, max_workers=1, output=output
        )
        service = ExtractionService(registry_root)
        site = site_names[0]
        documents = load_site_documents(corpus_dir / site)
        served = service.extract_pages(site, documents)
        runner_rows = [
            json.loads(line)
            for line in output.getvalue().splitlines()
            if json.loads(line)["site"] == site
        ]
        assert len(served) == len(runner_rows)
        report = next(r for r in reports if r.site == site)
        assert report.n_extractions == len(served)


class TestRunCorpusFusion:
    def test_fuse_stream_writes_fused_rows(self, corpus_on_disk, tmp_path):
        _, kb_path, corpus_dir, _, site_names = corpus_on_disk
        fused_out = io.StringIO()
        reports = run_corpus(
            corpus_dir, kb_path, None, max_workers=1, fuse=fused_out
        )
        assert all(report.ok for report in reports)
        rows = [json.loads(line) for line in fused_out.getvalue().splitlines()]
        assert rows
        assert set(rows[0]) == {
            "subject", "predicate", "object", "score", "n_sites", "sites",
        }
        for row in rows:
            assert 0.0 <= row["score"] <= 1.0
            assert set(row["sites"]) <= set(site_names)
            assert list(row["sites"]) == sorted(row["sites"])
        # Scores are descending (ties broken by key — total order).
        scores = [row["score"] for row in rows]
        assert scores == sorted(scores, reverse=True)

    def test_fused_output_independent_of_completion_order(
        self, corpus_on_disk, tmp_path
    ):
        """The acceptance bar: inline and pooled runs fuse to
        byte-identical JSONL despite different completion orders."""
        _, kb_path, corpus_dir, _, _ = corpus_on_disk
        inline_fused, pooled_fused = io.StringIO(), io.StringIO()
        run_corpus(corpus_dir, kb_path, None, max_workers=1, fuse=inline_fused)
        run_corpus(corpus_dir, kb_path, None, max_workers=2, fuse=pooled_fused)
        assert inline_fused.getvalue() == pooled_fused.getvalue()
        assert inline_fused.getvalue().strip()

    def test_factstore_fuse_receives_reliability(self, corpus_on_disk):
        from repro.fusion import FactStore

        _, kb_path, corpus_dir, _, site_names = corpus_on_disk
        store = FactStore(use_reliability=True)
        reports = run_corpus(
            corpus_dir, kb_path, None, max_workers=1, fuse=store
        )
        assert set(store.site_reliability) == set(site_names)
        assert all(0.0 < w < 1.0 for w in store.site_reliability.values())
        by_site = {r.site: r for r in reports}
        for name in site_names:
            assert by_site[name].kb_checked >= by_site[name].kb_agreed >= 0
        facts = store.finalize()
        assert facts

    def test_jsonl_roundtrip_equals_in_memory_fusion(self, corpus_on_disk):
        """Full-precision confidence in rows: fusing the JSONL stream is
        byte-identical to fusing the same rows fed directly to a store."""
        from repro.fusion import FactStore, write_fused_jsonl

        _, kb_path, corpus_dir, _, _ = corpus_on_disk
        rows_out, fused_direct = io.StringIO(), io.StringIO()
        store = FactStore()
        run_corpus(
            corpus_dir, kb_path, None, max_workers=1,
            output=rows_out, fuse=store,
        )
        write_fused_jsonl(store.finalize(), fused_direct)

        replayed = FactStore()
        for line in rows_out.getvalue().splitlines():
            replayed.add_row(json.loads(line))
        fused_replayed = io.StringIO()
        write_fused_jsonl(replayed.finalize(), fused_replayed)
        assert fused_direct.getvalue() == fused_replayed.getvalue()
        assert fused_direct.getvalue().strip()

    def test_rows_carry_full_precision_confidence(self, corpus_on_disk):
        """Row confidences must round-trip exactly (no 4-decimal rounding)."""
        _, kb_path, corpus_dir, _, _ = corpus_on_disk
        output = io.StringIO()
        run_corpus(corpus_dir, kb_path, None, max_workers=1, output=output)
        confidences = [
            json.loads(line)["confidence"]
            for line in output.getvalue().splitlines()
        ]
        assert confidences
        # A model-probability output rounded to 4 decimals is astronomically
        # unlikely to equal its own rounding everywhere; at least one row
        # must carry more precision.
        assert any(c != round(c, 4) for c in confidences)


class TestSiteReportSkips:
    def test_summary_includes_skipped_counts(self):
        from repro.runtime import SiteReport

        report = SiteReport(
            site="s", ok=True, n_pages=10, n_clusters=1, n_extractions=5,
            n_skipped_clusters=2, n_skipped_pages=3,
        )
        assert "skipped=3p/2c" in report.summary()

    def test_summary_omits_skips_when_none(self):
        from repro.runtime import SiteReport

        report = SiteReport(site="s", ok=True, n_pages=10)
        assert "skipped" not in report.summary()

    def test_run_site_records_skips(self, corpus_on_disk, tmp_path):
        """An undersized site flows its dropped pages into the report."""
        from repro.runtime.runner import _run_site
        from repro.runtime.serialize import config_to_dict

        tmp, kb_path, corpus_dir, _, site_names = corpus_on_disk
        site = site_names[0]
        small = tmp_path / "small"
        small.mkdir()
        pages = sorted((corpus_dir / site).glob("*.html"))[:2]
        for page in pages:
            (small / page.name).write_text(page.read_text())
        payload = _run_site(
            site, str(small), str(kb_path), None,
            config_to_dict(CeresConfig()), None,
        )
        report = payload["report"]
        assert report["n_skipped_pages"] == 2
        assert report["n_skipped_clusters"] >= 1


class TestRunnerObservability:
    """Worker telemetry rides home in the report and merges in the parent."""

    def test_report_always_carries_metrics_snapshot(
        self, corpus_on_disk, tmp_path
    ):
        from repro.runtime.runner import _run_site
        from repro.runtime.serialize import config_to_dict

        _, kb_path, corpus_dir, _, site_names = corpus_on_disk
        payload = _run_site(
            site_names[0], str(corpus_dir / site_names[0]), str(kb_path),
            None, config_to_dict(CeresConfig()), None,
        )
        report = payload["report"]
        counters = report["metrics"]["counters"]
        assert counters["runner.sites_ok"] == 1
        assert counters["pipeline.pages"] == report["n_pages"]
        assert counters["service.extractions"] == report["n_extractions"]
        # The satellite fix: per-site cache counters no longer die with
        # the worker.
        assert "cache.page_match.hits" in counters
        assert "cache.feature_registry.misses" in counters
        histograms = report["metrics"]["histograms"]
        for name in (
            "runner.site_seconds", "stage.annotate_seconds",
            "stage.train_seconds", "stage.extract_seconds",
        ):
            assert histograms[name]["count"] >= 1, name
        # No tracing requested: no spans shipped (they are bulky).
        assert report["spans"] is None
        assert report["seconds"] > 0

    def test_failed_site_reports_metrics_too(self, corpus_on_disk, tmp_path):
        from repro.runtime.runner import _run_site
        from repro.runtime.serialize import config_to_dict

        _, kb_path, _, _, _ = corpus_on_disk
        empty = tmp_path / "empty"
        empty.mkdir()
        payload = _run_site(
            "empty", str(empty), str(kb_path), None,
            config_to_dict(CeresConfig()), None,
        )
        report = payload["report"]
        assert not report["ok"]
        assert report["metrics"]["counters"]["runner.sites_failed"] == 1

    def test_trace_flag_ships_spans(self, corpus_on_disk):
        from repro.runtime.runner import _run_site
        from repro.runtime.serialize import config_to_dict

        _, kb_path, corpus_dir, _, site_names = corpus_on_disk
        payload = _run_site(
            site_names[0], str(corpus_dir / site_names[0]), str(kb_path),
            None, config_to_dict(CeresConfig()), None, trace=True,
        )
        spans = payload["report"]["spans"]
        names = {span["name"] for span in spans}
        assert {
            "site.run", "stage.cluster", "stage.annotate",
            "stage.train", "stage.extract",
        } <= names
        # site.run is the root of the worker's tree.
        root = next(s for s in spans if s["name"] == "site.run")
        assert root["parent_id"] is None
        ids = [s["span_id"] for s in spans]
        assert len(ids) == len(set(ids))

    @pytest.mark.parametrize("max_workers", [1, 2])
    def test_parent_merges_worker_telemetry(
        self, corpus_on_disk, tmp_path, max_workers
    ):
        from repro import obs

        _, kb_path, corpus_dir, _, site_names = corpus_on_disk
        fused_out = io.StringIO()
        with obs.scoped(tracing=True, metrics=True) as (tracer, registry):
            reports = run_corpus(
                corpus_dir, kb_path, None,
                max_workers=max_workers, fuse=fused_out,
            )
            counters = registry.snapshot()["counters"]
            histograms = registry.snapshot()["histograms"]
            span_names = {span["name"] for span in tracer.export()}
        assert all(report.ok for report in reports)
        assert counters["runner.sites_ok"] == len(site_names)
        assert counters["pipeline.pages"] == sum(r.n_pages for r in reports)
        assert counters["fusion.rows"] == sum(
            r.n_extractions for r in reports
        )
        assert "cache.feature_registry.misses" in counters
        # One site.seconds sample per site, merged across workers.
        assert histograms["runner.site_seconds"]["count"] == len(site_names)
        # Worker spans absorbed, parent-side fuse stage traced.
        assert {
            "site.run", "stage.cluster", "stage.annotate", "stage.train",
            "stage.extract", "stage.fuse",
        } <= span_names

    def test_summary_feat_cache_note(self):
        from repro.runtime import SiteReport

        report = SiteReport(
            site="s", ok=True, n_pages=4,
            metrics={
                "counters": {
                    "cache.feature_registry.hits": 3,
                    "cache.feature_registry.misses": 1,
                },
                "histograms": {},
            },
        )
        assert "feat_cache=75%" in report.summary()
        bare = SiteReport(site="s", ok=True, n_pages=4)
        assert "feat_cache" not in bare.summary()
