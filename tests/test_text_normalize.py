"""Tests for repro.text.normalize."""

import string

from hypothesis import given
from hypothesis import strategies as st

from repro.text.normalize import (
    is_low_information,
    is_year,
    normalize_text,
    strip_parenthetical,
    tokenize,
)


class TestNormalizeText:
    def test_basic_lowercasing(self):
        assert normalize_text("Spike Lee") == "spike lee"

    def test_punctuation_removed(self):
        assert normalize_text("Do the Right Thing!") == "do the right thing"

    def test_whitespace_collapsed(self):
        assert normalize_text("  a \t b \n c  ") == "a b c"

    def test_unicode_nfkc(self):
        # Full-width characters fold to ASCII under NFKC.
        assert normalize_text("Ｈｅｌｌｏ") == "hello"

    def test_empty(self):
        assert normalize_text("") == ""

    def test_pure_punctuation(self):
        assert normalize_text("!!! ???") == ""

    def test_digits_preserved(self):
        assert normalize_text("ISBN-13: 978-0134853987") == "isbn 13 978 0134853987"

    def test_casefold_not_just_lower(self):
        # German sharp s casefolds to 'ss'.
        assert normalize_text("STRASSE") == normalize_text("straße")

    @given(st.text(max_size=80))
    def test_idempotent(self, text):
        once = normalize_text(text)
        assert normalize_text(once) == once

    @given(st.text(max_size=80))
    def test_no_leading_trailing_space(self, text):
        result = normalize_text(text)
        assert result == result.strip()

    @given(st.text(alphabet=string.ascii_letters + " ", max_size=60))
    def test_case_insensitive(self, text):
        assert normalize_text(text.upper()) == normalize_text(text.lower())


class TestTokenize:
    def test_simple(self):
        assert tokenize("Spike Lee (director)") == ["spike", "lee", "director"]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("  !! ") == []


class TestStripParenthetical:
    def test_trailing_removed(self):
        assert strip_parenthetical("Crooklyn (1994)") == "Crooklyn"

    def test_internal_kept(self):
        assert strip_parenthetical("What (If) Tomorrow Comes") == "What (If) Tomorrow Comes"

    def test_no_parenthetical(self):
        assert strip_parenthetical("Crooklyn") == "Crooklyn"

    def test_trailing_with_space(self):
        assert strip_parenthetical("John Smith (II) ") == "John Smith"


class TestIsYear:
    def test_years(self):
        assert is_year("1989")
        assert is_year("2026")
        assert is_year(" 1989 ")

    def test_non_years(self):
        assert not is_year("989")
        assert not is_year("19890")
        assert not is_year("year")
        assert not is_year("1750")


class TestIsLowInformation:
    def test_years_are_low_info(self):
        assert is_low_information("1989")

    def test_single_digits(self):
        assert is_low_information("7")

    def test_decimal_numbers(self):
        assert is_low_information("6.5")
        assert is_low_information("1,234")

    def test_countries(self):
        assert is_low_information("United States")
        assert is_low_information("italy")

    def test_short_strings(self):
        assert is_low_information("ok")
        assert is_low_information("")
        assert is_low_information("   ")

    def test_real_names_pass(self):
        assert not is_low_information("Spike Lee")
        assert not is_low_information("Do the Right Thing")
