"""Tests for repro.evaluation.scoring."""

from repro.core.annotation.types import AnnotatedPage, Annotation, TopicResult
from repro.core.extraction.extractor import Extraction, PageCandidates
from repro.datasets.render import Emission, GeneratedPage, PageBuilder
from repro.evaluation.scoring import (
    annotation_scores,
    extraction_precision,
    node_level_scores,
    page_hit_scores,
    topic_scores,
)
from repro.kb.ontology import Ontology, Predicate
from repro.kb.store import KnowledgeBase
from repro.kb.triple import Entity, Value


def make_page(page_id="p0") -> GeneratedPage:
    builder = PageBuilder()
    builder.open("html").open("body")
    builder.leaf("h1", "The Film", predicate="name")
    builder.leaf("span", "Jane Doe", predicate="directed_by")
    builder.leaf("span", "Drama", predicate="genre")
    builder.leaf("span", "Comedy", predicate="genre")
    builder.leaf("span", "Drama")  # hazard: same string, no truth
    builder.close("body").close("html")
    return GeneratedPage(page_id, builder.html(), builder.emissions,
                         topic_entity_id="f1", topic_name="The Film")


def extraction_for(page, text_index, predicate, confidence=0.9, page_index=0):
    node = page.document.text_fields()[text_index]
    return Extraction("The Film", predicate, node.text, confidence, page_index, node)


class TestNodeLevelScores:
    def test_correct_extraction(self):
        page = make_page()
        scores = node_level_scores(
            [extraction_for(page, 1, "directed_by")], [page]
        )
        assert scores["directed_by"].tp == 1
        assert scores["directed_by"].fp == 0

    def test_wrong_node_is_fp_even_with_right_string(self):
        page = make_page()
        # Node 4 says "Drama" but asserts nothing.
        scores = node_level_scores([extraction_for(page, 4, "genre")], [page])
        assert scores["genre"].fp == 1
        # The two real genre instances are missed.
        assert scores["genre"].fn == 2

    def test_missing_gold_counts_fn(self):
        page = make_page()
        scores = node_level_scores([], [page], ["directed_by", "genre"])
        assert scores["directed_by"].fn == 1
        assert scores["genre"].fn == 2

    def test_predicate_filter(self):
        page = make_page()
        scores = node_level_scores(
            [extraction_for(page, 1, "directed_by")], [page], ["genre"]
        )
        assert "directed_by" not in scores

    def test_name_scoring_via_candidates(self):
        page = make_page()
        candidates = [PageCandidates(0, "The Film", 0.99, [])]
        scores = node_level_scores([], [page], ["name"], candidates)
        assert scores["name"].tp == 1

    def test_name_below_threshold_is_fn(self):
        page = make_page()
        candidates = [PageCandidates(0, "The Film", 0.3, [])]
        scores = node_level_scores([], [page], ["name"], candidates, threshold=0.5)
        assert scores["name"].fn == 1


class TestPageHitScores:
    def test_hit(self):
        page = make_page()
        scores = page_hit_scores(
            [extraction_for(page, 1, "directed_by")], [page], ["directed_by"]
        )
        assert scores["directed_by"].tp == 1

    def test_one_prediction_per_page(self):
        page = make_page()
        # Two predictions; higher-confidence one is wrong.
        wrong = extraction_for(page, 4, "directed_by", confidence=0.99)
        right = extraction_for(page, 1, "directed_by", confidence=0.5)
        scores = page_hit_scores([wrong, right], [page], ["directed_by"])
        # "Drama" does not match truth surface "Jane Doe".
        assert scores["directed_by"].tp == 0
        assert scores["directed_by"].fp == 1

    def test_string_level_tolerance(self):
        """Page-hit credit is string-based: the hazard node's string matches."""
        page = make_page()
        scores = page_hit_scores(
            [extraction_for(page, 4, "genre")], [page], ["genre"]
        )
        assert scores["genre"].tp == 1

    def test_no_truth_no_prediction_ignored(self):
        page = make_page()
        scores = page_hit_scores([], [page], ["mpaa_rating"])
        assert not scores["mpaa_rating"].defined


def build_kb() -> KnowledgeBase:
    ontology = Ontology(
        [
            Predicate("directed_by", range_kind="entity"),
            Predicate("genre", range_kind="string", multi_valued=True),
        ]
    )
    kb = KnowledgeBase(ontology)
    kb.add_entity(Entity("f1", "The Film", "film"))
    kb.add_entity(Entity("d1", "Jane Doe", "person"))
    kb.add_fact("f1", "directed_by", Value.entity("d1"))
    kb.add_fact("f1", "genre", Value.literal("Drama"))
    return kb


class TestAnnotationScores:
    def test_correct_annotation(self):
        page = make_page()
        kb = build_kb()
        node = page.document.text_fields()[1]
        annotated = AnnotatedPage(
            0, page.document, "f1", page.document.text_fields()[0],
            [Annotation("directed_by", node, ("e", "d1"), "Jane Doe")],
        )
        scores = annotation_scores([annotated], [page], kb)
        assert scores["directed_by"].tp == 1
        assert scores["directed_by"].fn == 0

    def test_recall_counts_only_kb_facts(self):
        """Comedy is on the page but not in the KB: not a recall miss."""
        page = make_page()
        kb = build_kb()
        annotated = AnnotatedPage(
            0, page.document, "f1", page.document.text_fields()[0], []
        )
        scores = annotation_scores([annotated], [page], kb, ["genre"])
        assert scores["genre"].fn == 1  # only Drama counts

    def test_wrong_node_annotation_fp(self):
        page = make_page()
        kb = build_kb()
        hazard_node = page.document.text_fields()[4]
        annotated = AnnotatedPage(
            0, page.document, "f1", page.document.text_fields()[0],
            [Annotation("genre", hazard_node, ("l", "drama"), "Drama")],
        )
        scores = annotation_scores([annotated], [page], kb, ["genre"])
        assert scores["genre"].fp == 1
        assert scores["genre"].fn == 1


class TestTopicScores:
    def test_correct_assignment(self):
        page = make_page()
        kb = build_kb()
        node = page.document.text_fields()[0]
        topics = {0: TopicResult(0, "f1", node, 0.5)}
        score = topic_scores(topics, [page], kb)
        assert score.tp == 1 and score.fp == 0 and score.fn == 0

    def test_wrong_assignment(self):
        page = make_page()
        kb = build_kb()
        node = page.document.text_fields()[0]
        topics = {0: TopicResult(0, "d1", node, 0.5)}
        score = topic_scores(topics, [page], kb)
        assert score.fp == 1 and score.fn == 1

    def test_missing_assignment_only_fn_when_in_kb(self):
        page = make_page()
        kb = build_kb()
        assert topic_scores({}, [page], kb).fn == 1
        # Page whose topic is not in the KB: no recall debt.
        page2 = make_page("p2")
        page2.topic_entity_id = "unknown-entity"
        assert topic_scores({}, [page2], kb).fn == 0


class TestExtractionPrecision:
    def test_counts(self):
        page = make_page()
        extractions = [
            extraction_for(page, 1, "directed_by"),
            extraction_for(page, 4, "genre"),
        ]
        correct, total = extraction_precision(extractions, [page])
        assert (correct, total) == (1, 2)

    def test_empty(self):
        assert extraction_precision([], []) == (0, 0)
