"""Tests for repro.datasets.imdb (complex-site generator and hazards)."""

import pytest

from repro.datasets.imdb import generate_imdb


@pytest.fixture(scope="module")
def dataset():
    return generate_imdb(seed=0, n_films=12, n_people=10, n_episodes=6)


class TestStructure:
    def test_page_counts(self, dataset):
        assert len(dataset.film_pages) == 12 + 6  # films + episodes
        assert len(dataset.person_pages) == 10

    def test_alignment(self, dataset):
        for page in dataset.film_pages + dataset.person_pages:
            _ = page.document

    def test_kb_built(self, dataset):
        assert dataset.kb is not None
        assert len(dataset.kb) > 500

    def test_deterministic(self):
        a = generate_imdb(seed=4, n_films=4, n_people=3, n_episodes=2)
        b = generate_imdb(seed=4, n_films=4, n_people=3, n_episodes=2)
        assert [p.html for p in a.film_pages] == [p.html for p in b.film_pages]


class TestHazards:
    def test_known_for_carries_no_predicate(self, dataset):
        """'Known For' blocks assert nothing (Section 5.4)."""
        found = False
        for page in dataset.person_pages:
            in_known_for = False
            for node, emission in page.aligned():
                element_classes = [
                    a.get("class", "") for a in node.ancestors()
                ]
                if any("kf-items" in c for c in element_classes):
                    in_known_for = True
                    assert emission.predicate is None
                    found = True
        assert found, "no Known For content generated"

    def test_development_section_no_predicate(self, dataset):
        found = False
        for page in dataset.person_pages:
            for node, emission in page.aligned():
                classes = [a.get("class", "") for a in node.ancestors()]
                if any("dev-list" in c for c in classes):
                    if emission.text not in ("Projects in Development",):
                        assert emission.predicate is None
                        found = True
        assert found or True  # dev sections are probabilistic

    def test_recommendation_rail_no_predicate(self, dataset):
        for page in dataset.film_pages:
            for node, emission in page.aligned():
                classes = [a.get("class", "") for a in node.ancestors()]
                if any("side-items" in c for c in classes):
                    assert emission.predicate is None

    def test_alias_also_appears_as_character(self, dataset):
        """The alias-as-character-name hazard (Table 5's alias row)."""
        hazard_pages = 0
        for page in dataset.person_pages:
            aliases = set(page.truth.objects.get("alias", []))
            if not aliases:
                continue
            character_fields = [
                e.text for _, e in page.aligned()
                if e.predicate is None and e.text.startswith("as ")
            ]
            if any(f"as {alias}" in character_fields for alias in aliases):
                hazard_pages += 1
        assert hazard_pages >= 1

    def test_duplicated_genres_in_recommendations(self, dataset):
        """Example 3.2: rec-block genres overlap topic genres."""
        overlapping = 0
        for page in dataset.film_pages:
            genres = set(page.truth.objects.get("genre", []))
            if not genres:
                continue
            rec_texts = set()
            for node, emission in page.aligned():
                classes = [a.get("class", "") for a in node.ancestors()]
                if any("side-items" in c for c in classes):
                    rec_texts.add(emission.text)
            if genres & rec_texts:
                overlapping += 1
        assert overlapping >= 1

    def test_kb_cast_bias(self, dataset):
        """KB contains cast facts only for principal cast (footnote 10)."""
        kb = dataset.kb
        universe = dataset.universe
        for film in list(universe.films.values())[:20]:
            kb_cast = {
                t.object.value
                for t in kb.triples_for_subject(film.id)
                if t.predicate == "has_cast_member"
            }
            assert kb_cast <= set(film.principal_cast_ids)

    def test_episode_pages_have_series_truth(self, dataset):
        episode_pages = [
            p for p in dataset.film_pages if p.topic_entity_id.startswith("episode:")
        ]
        assert episode_pages
        for page in episode_pages:
            assert "series" in page.truth.objects
            assert "season_number" in page.truth.objects
            assert "episode_number" in page.truth.objects
