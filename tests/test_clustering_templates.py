"""Tests for repro.clustering.templates (page template clustering)."""

from repro.clustering.templates import cluster_pages, page_signature
from repro.dom.parser import parse_html


def movie_page(title: str, n_cast: int) -> str:
    cast = "".join(f"<li class='cast'>Actor {i}</li>" for i in range(n_cast))
    return (
        f"<html><body><div class='movie'><h1>{title}</h1>"
        f"<div class='info'><span>Director</span><span>Someone</span></div>"
        f"<ul class='cast-list'>{cast}</ul></div></body></html>"
    )


def person_page(name: str) -> str:
    return (
        f"<html><body><article class='person'><h2>{name}</h2>"
        f"<table class='bio'><tr><td>Born</td><td>1950</td></tr></table>"
        f"<section class='filmography'><p>Film A</p><p>Film B</p></section>"
        f"</article></body></html>"
    )


class TestPageSignature:
    def test_repetition_invariant(self):
        a = page_signature(parse_html(movie_page("A", 3)))
        b = page_signature(parse_html(movie_page("B", 25)))
        assert a == b

    def test_different_templates_differ(self):
        movie = page_signature(parse_html(movie_page("A", 3)))
        person = page_signature(parse_html(person_page("P")))
        assert movie != person

    def test_class_attributes_included(self):
        signature = page_signature(parse_html(movie_page("A", 1)))
        assert any(".cast-list" in shingle for shingle in signature)


class TestClusterPages:
    def test_separates_page_types(self):
        docs = [parse_html(movie_page(f"M{i}", 3 + i)) for i in range(5)]
        docs += [parse_html(person_page(f"P{i}")) for i in range(3)]
        clusters = cluster_pages(docs)
        assert len(clusters) == 2
        assert sorted(len(c) for c in clusters) == [3, 5]
        # Clusters are sorted by size descending.
        assert len(clusters[0]) == 5
        assert set(clusters[0].page_indices) == {0, 1, 2, 3, 4}

    def test_single_template(self):
        docs = [parse_html(movie_page(f"M{i}", i + 1)) for i in range(4)]
        clusters = cluster_pages(docs)
        assert len(clusters) == 1
        assert clusters[0].page_indices == [0, 1, 2, 3]

    def test_empty(self):
        assert cluster_pages([]) == []

    def test_threshold_one_requires_identical(self):
        docs = [
            parse_html(movie_page("A", 2)),
            parse_html(person_page("B")),
        ]
        clusters = cluster_pages(docs, similarity_threshold=1.0)
        assert len(clusters) == 2

    def test_indices_partition_input(self):
        docs = [parse_html(movie_page(f"M{i}", 2)) for i in range(3)]
        docs += [parse_html(person_page("P"))]
        clusters = cluster_pages(docs)
        all_indices = sorted(i for c in clusters for i in c.page_indices)
        assert all_indices == list(range(len(docs)))
