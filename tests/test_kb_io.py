"""Tests for repro.kb.io (KB JSON serialization)."""

import pytest

from repro.kb.io import kb_from_dict, kb_to_dict, load_kb, save_kb
from repro.kb.ontology import Ontology, Predicate
from repro.kb.store import KnowledgeBase
from repro.kb.triple import Entity, Value


def sample_kb() -> KnowledgeBase:
    ontology = Ontology(
        [
            Predicate("directed_by", domain="film", range_kind="entity"),
            Predicate("genre", domain="film", range_kind="string", multi_valued=True),
            Predicate("release_date", domain="film", range_kind="date"),
        ]
    )
    kb = KnowledgeBase(ontology)
    kb.add_entity(Entity("f1", "Do the Right Thing", "film", ("DTRT",)))
    kb.add_entity(Entity("p1", "Spike Lee", "person"))
    kb.add_fact("f1", "directed_by", Value.entity("p1"))
    kb.add_fact("f1", "genre", Value.literal("Drama"))
    kb.add_fact("f1", "release_date", Value.literal("1989-06-30"))
    return kb


class TestRoundTrip:
    def test_dict_roundtrip(self):
        kb = sample_kb()
        restored = kb_from_dict(kb_to_dict(kb))
        assert len(restored) == len(kb)
        assert set(restored.entities) == set(kb.entities)
        assert restored.entity("f1").aliases == ("DTRT",)
        assert restored.ontology.get("genre").multi_valued

    def test_indexes_rebuilt(self):
        restored = kb_from_dict(kb_to_dict(sample_kb()))
        assert restored.entity_ids_for_text("Spike Lee") == {"p1"}
        assert restored.entity_ids_for_text("DTRT") == {"f1"}
        # Date variants must be re-indexed on load.
        assert ("l", "1989 06 30") in restored.value_keys_for_text("June 30, 1989")

    def test_file_roundtrip(self, tmp_path):
        kb = sample_kb()
        path = tmp_path / "kb.json"
        save_kb(kb, path)
        restored = load_kb(path)
        assert len(restored) == len(kb)
        assert {t.predicate for t in restored.triples} == {
            "directed_by", "genre", "release_date",
        }

    def test_malformed_rejected(self):
        with pytest.raises(KeyError):
            kb_from_dict(
                {
                    "ontology": [{"name": "p"}],
                    "entities": [],
                    "triples": [{"s": "ghost", "p": "p", "o": "x", "kind": "literal"}],
                }
            )

    def test_empty_kb(self):
        restored = kb_from_dict({"ontology": [], "entities": [], "triples": []})
        assert len(restored) == 0
