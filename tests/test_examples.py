"""Smoke test: the quickstart example must run end-to-end.

The heavier examples (IMDb, long-tail) are exercised indirectly through
the benchmark suite; quickstart is fast enough for the unit tests and
doubles as living documentation of the public API.
"""

import importlib.util
import pathlib
import sys


def load_example(name: str):
    path = pathlib.Path(__file__).parent.parent / "examples" / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples.{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestQuickstart:
    def test_runs_and_discovers_long_tail(self, capsys):
        module = load_example("quickstart")
        module.main()
        output = capsys.readouterr().out
        assert "— Annotation —" in output
        assert "— Extraction —" in output
        assert "The Hidden Vineyard" in output  # the long-tail discovery
        assert "directed_by" in output

    def test_seed_kb_shape(self):
        module = load_example("quickstart")
        kb = module.build_seed_kb()
        assert len(kb) > 10
        assert kb.entity_ids_for_text("Spike Lee")
