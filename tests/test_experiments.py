"""Smoke + shape tests for the experiment runners (small configurations).

These keep the benchmark harnesses honest: every runner must return a
well-formed result whose ``format()`` renders, at a scale small enough for
the unit-test suite.  The shape assertions (who wins) run at slightly
larger scale inside ``tests/test_integration_shapes.py``.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.datasets import generate_imdb
from repro.datasets.commoncrawl import CCSiteConfig
from repro.evaluation.experiments import (
    run_figure4,
    run_figure6,
    run_table1,
    run_table2,
    run_table3,
    run_table7,
    run_table8,
    run_table9,
)


class TestTable1:
    def test_rows(self):
        result = run_table1(n_sites=2, pages_per_site=4)
        assert len(result.rows) == 4
        assert "Table 1" in result.format()


class TestTable2:
    def test_profile(self):
        result = run_table2(seed=0)
        assert result.total_triples > 1000
        assert len(result.rows) == 4
        formatted = result.format()
        assert "Person" in formatted and "TV Episode" in formatted


class TestTable3:
    def test_small_run(self):
        result = run_table3(
            n_sites=2, pages_per_site=12, verticals=("nbaplayer",)
        )
        assert "CERES-Full" in result.f1
        f1 = result.f1["CERES-Full"]["nbaplayer"]
        assert f1 is not None and f1 > 0.5
        assert "Table 3" in result.format()


class TestTable7:
    def test_high_precision(self):
        dataset = generate_imdb(0, n_films=12, n_people=10, n_episodes=4)
        result = run_table7(dataset=dataset)
        assert set(result.scores) == {"person", "film"}
        for score in result.scores.values():
            assert score.precision > 0.9
        assert "Table 7" in result.format()


SMALL_CC = (
    CCSiteConfig("smalla", "General", "en", 10, 0.8),
    CCSiteConfig("smallb", "Charts", "en", 0, 0.0,
                 hazards=frozenset({"charts_only"}), n_noise_pages=4),
)


class TestTables89Figure6:
    @pytest.fixture(scope="class")
    def runs(self):
        return run_table8(seed=0, sites=SMALL_CC)

    def test_table8(self, runs):
        table, dataset, results = runs
        assert len(table.sites) == 2
        by_name = {s.name: s for s in table.sites}
        assert by_name["smalla"].n_extractions > 0
        assert by_name["smallb"].n_extractions == 0
        assert by_name["smallb"].precision is None
        assert "Table 8" in table.format()
        totals = table.totals()
        assert totals.n_pages == sum(s.n_pages for s in table.sites)

    def test_table9(self, runs):
        _, dataset, results = runs
        table = run_table9(dataset, results)
        assert table.rows
        assert "Table 9" in table.format()
        for _, (ann, ext, precision) in table.rows.items():
            assert ann >= 0 and ext >= 0
            if ext:
                assert 0.0 <= precision <= 1.0

    def test_figure6_monotone_precision(self, runs):
        _, dataset, results = runs
        figure = run_figure6(dataset, results, thresholds=(0.5, 0.7, 0.9))
        counts = [count for _, count, _ in figure.points]
        assert counts == sorted(counts, reverse=True)
        assert "Figure 6" in figure.format()

    def test_table9_report_is_hash_seed_invariant(self):
        """run_table9 iterates a set union of predicates; Table9Result's
        stable sort breaks extraction-count ties by insertion order, so
        unsorted iteration would leak PYTHONHASHSEED into the report.
        The report must be byte-identical across hash seeds."""
        script = (
            "import sys\n"
            "from repro.evaluation.experiments.commoncrawl import run_table9\n"
            "class Page:\n"
            "    def emission_for_node(self, node):\n"
            "        return None\n"
            "class Site:\n"
            "    name = 'site'\n"
            "    pages = [Page()]\n"
            "class Dataset:\n"
            "    sites = [Site()]\n"
            "class Ann:\n"
            "    def __init__(self, p):\n"
            "        self.predicate = p\n"
            "class Ext:\n"
            "    def __init__(self, p):\n"
            "        self.predicate, self.page_index, self.node = p, 0, None\n"
            "class APage:\n"
            "    def __init__(self, anns):\n"
            "        self.annotations = anns\n"
            "class Result:\n"
            "    annotated_pages = [APage([Ann(f'p{i}') for i in range(8)])]\n"
            "    extractions = [Ext(f'p{i}') for i in range(8)]\n"
            "table = run_table9(Dataset(), {'site': Result()})\n"
            "sys.stdout.write(table.format())\n"
        )
        outputs = set()
        for seed in ("1", "2", "3"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = str(Path(__file__).parent.parent / "src")
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=env, check=True,
            )
            outputs.add(proc.stdout)
        assert len(outputs) == 1, "Table 9 report differs across hash seeds"


class TestFigure4:
    def test_points(self):
        result = run_figure4(n_sites=4, pages_per_site=16, seed=0)
        assert len(result.points) == 3  # KB site excluded
        assert "Figure 4" in result.format()
        for _, overlap, f1 in result.points:
            assert 0 <= f1 <= 1
            assert overlap >= 0
