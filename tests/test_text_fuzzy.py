"""Tests for repro.text.fuzzy (surface variants, StringIndex)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.text.fuzzy import StringIndex, surface_variants
from repro.text.normalize import normalize_text


class TestSurfaceVariants:
    def test_plain(self):
        assert surface_variants("Spike Lee") == {"spike lee"}

    def test_comma_inversion(self):
        assert "spike lee" in surface_variants("Lee, Spike")

    def test_comma_inversion_keeps_original(self):
        assert "lee spike" in surface_variants("Lee, Spike")

    def test_trailing_parenthetical(self):
        variants = surface_variants("Crooklyn (1994)")
        assert "crooklyn" in variants
        assert "crooklyn 1994" in variants

    def test_empty(self):
        assert surface_variants("") == set()
        assert surface_variants("!!!") == set()

    def test_comma_inside_parenthetical_not_inverted(self):
        # "Gladiator (2000, UK)" is a title + qualifier, not "Last, First";
        # the old behavior indexed the bogus variant "uk gladiator 2000".
        variants = surface_variants("Gladiator (2000, UK)")
        assert "uk gladiator 2000" not in variants
        assert variants == {"gladiator 2000 uk", "gladiator"}

    def test_comma_inversion_survives_trailing_parenthetical(self):
        # A true name inversion still fires once the qualifier is stripped.
        variants = surface_variants("Lee, Spike (director)")
        assert "spike lee" in variants

    def test_comma_only_inside_parenthetical_no_inversion(self):
        variants = surface_variants("Big Night (1996, US, Drama)")
        assert "big night" in variants
        assert not any(v.startswith("1996") or v.startswith("us ") for v in variants)

    def test_long_comma_phrase_not_inverted(self):
        # Clause-like comma usage should not generate inversions.
        text = "The Good, the Bad and the Ugly went to town together"
        variants = surface_variants(text)
        assert normalize_text(text) in variants
        assert len(variants) == 1

    @given(st.text(max_size=40))
    def test_variants_are_normalized(self, text):
        for variant in surface_variants(text):
            assert variant == normalize_text(variant)


class TestStringIndex:
    def test_roundtrip(self):
        index = StringIndex()
        index.add("Do the Right Thing", "m1")
        assert index.lookup("do the right thing!") == {"m1"}

    def test_multiple_payloads(self):
        index = StringIndex()
        index.add("Pilot", "ep1")
        index.add("Pilot", "ep2")
        assert index.lookup("Pilot") == {"ep1", "ep2"}

    def test_comma_inversion_lookup(self):
        index = StringIndex()
        index.add("Spike Lee", "p1")
        assert index.lookup("Lee, Spike") == {"p1"}

    def test_parenthetical_lookup(self):
        index = StringIndex()
        index.add("Crooklyn", "m2")
        assert index.lookup("Crooklyn (1994)") == {"m2"}

    def test_miss(self):
        index = StringIndex()
        index.add("Spike Lee", "p1")
        assert index.lookup("Someone Else") == set()

    def test_contains(self):
        index = StringIndex()
        index.add("Spike Lee", "p1")
        assert index.contains("spike lee")
        assert not index.contains("joe")

    def test_add_exact(self):
        index = StringIndex()
        index.add_exact("already normalized", 1)
        assert index.lookup_normalized("already normalized") == {1}
        # add_exact does not generate variants.
        assert index.lookup_normalized("already") == set()

    def test_add_exact_empty_ignored(self):
        index = StringIndex()
        index.add_exact("", 1)
        assert len(index) == 0

    def test_update(self):
        index = StringIndex()
        index.update(["A Film", "Le Film"], "m3")
        assert index.lookup("a film") == {"m3"}
        assert index.lookup("le film") == {"m3"}

    def test_duplicate_add_is_idempotent(self):
        index = StringIndex()
        index.add("Spike Lee", "p1")
        size = len(index)
        index.add("Spike Lee", "p1")
        assert len(index) == size

    @given(st.lists(st.tuples(st.text(min_size=1, max_size=20), st.integers()), max_size=30))
    def test_every_added_surface_is_findable(self, pairs):
        index = StringIndex()
        for surface, value in pairs:
            index.add(surface, value)
        for surface, value in pairs:
            if normalize_text(surface):
                assert value in index.lookup(surface)
