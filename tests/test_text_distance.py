"""Tests for repro.text.distance (Levenshtein, Jaccard, batched engine)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.distance import (
    batched_levenshtein,
    encode_token_sequences,
    jaccard,
    levenshtein,
    levenshtein_matrix,
    normalized_levenshtein,
)

short_text = st.text(alphabet="abcde", max_size=12)

#: XPath-step-shaped tokens: (tag, index) with wildcardable indices.
xpath_step = st.tuples(
    st.sampled_from(["div", "span", "li", "ul", "p", "text()"]),
    st.one_of(st.none(), st.integers(1, 9)),
)
xpath_tokens = st.lists(
    st.lists(xpath_step, max_size=10).map(tuple), max_size=14
)


class TestLevenshtein:
    def test_classic(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_identity(self):
        assert levenshtein("abc", "abc") == 0

    def test_empty(self):
        assert levenshtein("", "abc") == 3
        assert levenshtein("abc", "") == 3
        assert levenshtein("", "") == 0

    def test_single_substitution(self):
        assert levenshtein("cat", "bat") == 1

    def test_insertion(self):
        assert levenshtein("cat", "cart") == 1

    def test_token_sequences(self):
        a = (("div", 1), ("span", 2))
        b = (("div", 1), ("span", 3))
        assert levenshtein(a, b) == 1

    def test_token_sequences_insert(self):
        a = (("div", 1), ("span", 2))
        b = (("div", 1), ("p", 1), ("span", 2))
        assert levenshtein(a, b) == 1

    def test_limit_returns_large_value(self):
        # With a limit, the return value may underestimate but must still
        # exceed the limit when the true distance does.
        result = levenshtein("aaaaaaaa", "bbbbbbbb", limit=2)
        assert result > 2

    def test_limit_exact_under_limit(self):
        assert levenshtein("kitten", "sitting", limit=10) == 3

    @given(short_text, short_text)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(short_text)
    def test_self_distance_zero(self, a):
        assert levenshtein(a, a) == 0

    @given(short_text, short_text)
    def test_bounds(self, a, b):
        d = levenshtein(a, b)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))

    @settings(max_examples=40)
    @given(short_text, short_text, short_text)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(short_text, short_text)
    def test_zero_iff_equal(self, a, b):
        assert (levenshtein(a, b) == 0) == (a == b)


class TestBatchedLevenshtein:
    """The vectorized engine must agree exactly with the pure-Python DP."""

    @settings(max_examples=60, deadline=None)
    @given(xpath_tokens)
    def test_matrix_matches_pairwise_python(self, sequences):
        matrix = levenshtein_matrix(sequences)
        n = len(sequences)
        assert matrix.shape == (n, n)
        for i in range(n):
            for j in range(n):
                assert matrix[i, j] == levenshtein(sequences[i], sequences[j])

    @settings(max_examples=40, deadline=None)
    @given(st.lists(short_text, max_size=10))
    def test_matrix_matches_on_strings(self, sequences):
        matrix = levenshtein_matrix(sequences)
        for i in range(len(sequences)):
            for j in range(len(sequences)):
                assert matrix[i, j] == levenshtein(sequences[i], sequences[j])

    def test_empty_and_single(self):
        assert levenshtein_matrix([]).shape == (0, 0)
        assert levenshtein_matrix([("div", 1)]).shape == (1, 1)

    def test_empty_sequences_in_batch(self):
        sequences = [(), ("a", "b"), (), ("a",)]
        matrix = levenshtein_matrix(sequences)
        assert matrix[0, 1] == 2
        assert matrix[0, 2] == 0
        assert matrix[1, 3] == 1

    def test_encode_interns_by_equality(self):
        codes, lengths = encode_token_sequences([("a", "b"), ("b", "a", "b")])
        assert list(lengths) == [2, 3]
        # 'a' and 'b' get one code each, reused across sequences.
        assert codes[0, 0] == codes[1, 1]
        assert codes[0, 1] == codes[1, 0] == codes[1, 2]
        assert codes[0, 2] == -1  # padding

    def test_batched_pairs_api(self):
        codes, lengths = encode_token_sequences(["kitten", "sitting"])
        distances = batched_levenshtein(
            codes[:1], lengths[:1], codes[1:], lengths[1:]
        )
        assert list(distances) == [3]

    def test_batched_empty_pair_list(self):
        codes, lengths = encode_token_sequences([])
        out = batched_levenshtein(codes, lengths, codes, lengths)
        assert len(out) == 0


class TestNormalizedLevenshtein:
    def test_range(self):
        assert normalized_levenshtein("abc", "xyz") == 1.0
        assert normalized_levenshtein("abc", "abc") == 0.0

    def test_empty(self):
        assert normalized_levenshtein("", "") == 0.0

    @given(short_text, short_text)
    def test_bounds(self, a, b):
        assert 0.0 <= normalized_levenshtein(a, b) <= 1.0


class TestJaccard:
    def test_basic(self):
        assert jaccard({1, 2}, {2, 3}) == 1 / 3

    def test_disjoint(self):
        assert jaccard({1}, {2}) == 0.0

    def test_identical(self):
        assert jaccard({1, 2, 3}, {1, 2, 3}) == 1.0

    def test_both_empty(self):
        assert jaccard(set(), set()) == 0.0

    def test_one_empty(self):
        assert jaccard({1}, set()) == 0.0

    def test_frozenset(self):
        assert jaccard(frozenset({1, 2}), frozenset({2})) == 0.5

    @given(st.sets(st.integers(0, 20)), st.sets(st.integers(0, 20)))
    def test_bounds_and_symmetry(self, a, b):
        s = jaccard(a, b)
        assert 0.0 <= s <= 1.0
        assert s == jaccard(b, a)

    @given(st.sets(st.integers(0, 20), min_size=1))
    def test_subset_monotonicity(self, a):
        # A set is at least as similar to itself as to any superset.
        superset = a | {999}
        assert jaccard(a, a) >= jaccard(a, superset)
