"""Tests for repro.text.distance (Levenshtein, Jaccard)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.distance import jaccard, levenshtein, normalized_levenshtein

short_text = st.text(alphabet="abcde", max_size=12)


class TestLevenshtein:
    def test_classic(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_identity(self):
        assert levenshtein("abc", "abc") == 0

    def test_empty(self):
        assert levenshtein("", "abc") == 3
        assert levenshtein("abc", "") == 3
        assert levenshtein("", "") == 0

    def test_single_substitution(self):
        assert levenshtein("cat", "bat") == 1

    def test_insertion(self):
        assert levenshtein("cat", "cart") == 1

    def test_token_sequences(self):
        a = (("div", 1), ("span", 2))
        b = (("div", 1), ("span", 3))
        assert levenshtein(a, b) == 1

    def test_token_sequences_insert(self):
        a = (("div", 1), ("span", 2))
        b = (("div", 1), ("p", 1), ("span", 2))
        assert levenshtein(a, b) == 1

    def test_limit_returns_large_value(self):
        # With a limit, the return value may underestimate but must still
        # exceed the limit when the true distance does.
        result = levenshtein("aaaaaaaa", "bbbbbbbb", limit=2)
        assert result > 2

    def test_limit_exact_under_limit(self):
        assert levenshtein("kitten", "sitting", limit=10) == 3

    @given(short_text, short_text)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(short_text)
    def test_self_distance_zero(self, a):
        assert levenshtein(a, a) == 0

    @given(short_text, short_text)
    def test_bounds(self, a, b):
        d = levenshtein(a, b)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))

    @settings(max_examples=40)
    @given(short_text, short_text, short_text)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(short_text, short_text)
    def test_zero_iff_equal(self, a, b):
        assert (levenshtein(a, b) == 0) == (a == b)


class TestNormalizedLevenshtein:
    def test_range(self):
        assert normalized_levenshtein("abc", "xyz") == 1.0
        assert normalized_levenshtein("abc", "abc") == 0.0

    def test_empty(self):
        assert normalized_levenshtein("", "") == 0.0

    @given(short_text, short_text)
    def test_bounds(self, a, b):
        assert 0.0 <= normalized_levenshtein(a, b) <= 1.0


class TestJaccard:
    def test_basic(self):
        assert jaccard({1, 2}, {2, 3}) == 1 / 3

    def test_disjoint(self):
        assert jaccard({1}, {2}) == 0.0

    def test_identical(self):
        assert jaccard({1, 2, 3}, {1, 2, 3}) == 1.0

    def test_both_empty(self):
        assert jaccard(set(), set()) == 0.0

    def test_one_empty(self):
        assert jaccard({1}, set()) == 0.0

    def test_frozenset(self):
        assert jaccard(frozenset({1, 2}), frozenset({2})) == 0.5

    @given(st.sets(st.integers(0, 20)), st.sets(st.integers(0, 20)))
    def test_bounds_and_symmetry(self, a, b):
        s = jaccard(a, b)
        assert 0.0 <= s <= 1.0
        assert s == jaccard(b, a)

    @given(st.sets(st.integers(0, 20), min_size=1))
    def test_subset_monotonicity(self, a):
        # A set is at least as similar to itself as to any superset.
        superset = a | {999}
        assert jaccard(a, a) >= jaccard(a, superset)
