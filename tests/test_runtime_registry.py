"""Registry round-trips: save → load → extract must be exact."""

import json

import numpy as np
import pytest

from repro.core.config import CeresConfig
from repro.core.pipeline import CeresPipeline
from repro.datasets import generate_swde, seed_kb_for
from repro.runtime import (
    FORMAT_VERSION,
    ModelRegistry,
    RegistryError,
    SiteModel,
    site_model_from_dict,
    site_model_to_dict,
)


@pytest.fixture(scope="module")
def trained_site():
    dataset = generate_swde("movie", n_sites=2, pages_per_site=16, seed=2)
    kb = seed_kb_for(dataset, 2)
    site = dataset.sites[1]
    documents = [page.document for page in site.pages]
    config = CeresConfig(confidence_threshold=0.6)
    pipeline = CeresPipeline(kb, config)
    result = pipeline.run(documents, documents)
    assert result.extractions, "fixture produced no extractions"
    return site.name, config, documents, result


@pytest.fixture()
def registry(tmp_path):
    return ModelRegistry(tmp_path / "models")


def _extraction_rows(extractions):
    return [
        (e.page_index, e.subject, e.predicate, e.object, e.confidence)
        for e in extractions
    ]


class TestRoundTrip:
    def test_extractions_byte_identical(self, trained_site, registry):
        site, config, documents, result = trained_site
        site_model = SiteModel.from_result(site, config, result)
        registry.save(site_model)
        loaded = registry.load(site)

        pools = {
            "memory": SiteModel.from_result(site, config, result),
            "disk": loaded,
        }
        serialized = {}
        for label, model in pools.items():
            from repro.core.extraction.extractor import ClusterExtractorPool

            pool = ClusterExtractorPool(
                [(c.signature, c.model) for c in model.clusters], model.config
            )
            rows = _extraction_rows(pool.extract(documents))
            serialized[label] = json.dumps(rows)
        assert serialized["memory"] == serialized["disk"]
        # And both reproduce the pipeline's own extractions byte for byte.
        assert json.dumps(_extraction_rows(result.extractions)) == serialized["disk"]

    def test_components_preserved(self, trained_site, registry):
        site, config, documents, result = trained_site
        site_model = SiteModel.from_result(site, config, result)
        registry.save(site_model)
        loaded = registry.load(site)

        assert loaded.site == site
        assert loaded.config == config  # incl. tuple-typed struct_attributes
        assert len(loaded.clusters) == len(site_model.clusters)
        for original, restored in zip(site_model.clusters, loaded.clusters):
            assert restored.signature == original.signature
            # v2 artifacts don't store the lexicon; it is reconstructed
            # from the site:t| vocabulary names — a subset of the trained
            # lexicon (strings without fitted features drop out, which
            # cannot change scores: their names were unknown anyway).
            assert (
                restored.model.feature_extractor.frequent_strings
                <= original.model.feature_extractor.frequent_strings
            )
            assert (
                restored.model.vectorizer.vocabulary_
                == original.model.vectorizer.vocabulary_
            )
            assert np.array_equal(
                restored.model.classifier.coef_, original.model.classifier.coef_
            )
            assert np.array_equal(
                restored.model.classifier.intercept_,
                original.model.classifier.intercept_,
            )
            assert list(restored.model.classifier.classes_) == list(
                original.model.classifier.classes_
            )

    def test_dict_round_trip_stable(self, trained_site):
        site, config, _, result = trained_site
        site_model = SiteModel.from_result(site, config, result)
        once = site_model_to_dict(site_model)
        twice = site_model_to_dict(site_model_from_dict(once))
        assert json.dumps(once, sort_keys=True) == json.dumps(twice, sort_keys=True)

    def test_sites_listing_and_has(self, trained_site, registry):
        site, config, _, result = trained_site
        assert registry.sites() == []
        assert not registry.has(site)
        registry.save(SiteModel.from_result(site, config, result))
        assert registry.sites() == [site]
        assert registry.has(site)
        assert registry.delete(site)
        assert registry.sites() == []

    def test_site_key_is_filesystem_safe(self, trained_site, registry):
        _, config, _, result = trained_site
        weird = "https://example.com/a/b?c=1"
        registry.save(SiteModel.from_result(weird, config, result))
        assert registry.sites() == [weird]
        assert "/" not in registry.path_for(weird).name
        assert registry.load(weird).site == weird


class TestFormatV2:
    def test_vocabulary_stored_per_namespace(self, trained_site):
        """v2 artifacts split the vocabulary by namespace with prefixes
        stripped, and no longer store the frequent-string lexicon."""
        site, config, _, result = trained_site
        data = site_model_to_dict(SiteModel.from_result(site, config, result))
        assert data["format_version"] == FORMAT_VERSION
        for entry in data["clusters"]:
            model = entry["model"]
            assert "frequent_strings" not in model
            vocabulary = model["vocabulary"]
            assert set(vocabulary) == {"site", "xfer"}
            joined = [f"site:{n}" for n in vocabulary["site"]] + [
                f"xfer:{n}" for n in vocabulary["xfer"]
            ]
            assert joined == sorted(joined)  # column order reproduced
            for local in vocabulary["site"] + vocabulary["xfer"]:
                assert not local.startswith(("site:", "xfer:"))

    def test_v2_artifact_smaller_than_v1_encoding(self, trained_site):
        """Prefix stripping + lexicon removal shrink the payload vs the
        v1-style encoding of the same model."""
        site, config, _, result = trained_site
        site_model = SiteModel.from_result(site, config, result)
        data = site_model_to_dict(site_model)
        v1_style = json.loads(json.dumps(data))
        for entry, cluster in zip(v1_style["clusters"], site_model.clusters):
            model = entry["model"]
            vocabulary = model["vocabulary"]
            model["vocabulary"] = [f"site:{n}" for n in vocabulary["site"]] + [
                f"xfer:{n}" for n in vocabulary["xfer"]
            ]
            model["frequent_strings"] = sorted(
                cluster.model.feature_extractor.frequent_strings
            )
        v2_size = len(json.dumps(data, sort_keys=True))
        v1_size = len(json.dumps(v1_style, sort_keys=True))
        assert v2_size < v1_size

    def test_flat_vocabulary_fallback(self):
        """Hand-built, un-namespaced vocabularies round-trip as flat lists."""
        from repro.runtime.serialize import (
            _vocabulary_from_jsonable,
            _vocabulary_to_jsonable,
        )
        from repro.ml.features import FeatureVectorizer

        vectorizer = FeatureVectorizer().fit([{"b": 1.0, "a": 1.0}])
        encoded = _vocabulary_to_jsonable(vectorizer)
        assert encoded == ["a", "b"]
        restored = _vocabulary_from_jsonable(encoded)
        assert restored.vocabulary_ == vectorizer.vocabulary_


class TestGlobalArtifact:
    @pytest.fixture(scope="class")
    def global_model(self):
        from repro.core.config import CeresConfig
        from repro.transfer.trainer import collect_site_examples, train_global

        dataset = generate_swde("movie", n_sites=4, pages_per_site=12, seed=7)
        kb = seed_kb_for(dataset, 7)
        config = CeresConfig()
        pools = []
        for site in dataset.sites[:3]:
            documents = [page.document for page in site.pages]
            pools.append(
                collect_site_examples(site.name, kb, documents, config)
            )
        model = train_global(pools, kb.ontology.names(), config)
        held_out = [page.document for page in dataset.sites[3].pages]
        return model, held_out

    def test_round_trip_scores_identical(self, global_model, registry, tmp_path):
        model, held_out = global_model
        path = registry.save_global(model)
        assert path == registry.global_path
        assert registry.has_global()
        assert registry.sites() == []  # the global artifact is not a site
        loaded = registry.load_global()
        original_rows = _extraction_rows(model.extract(held_out))
        loaded_rows = _extraction_rows(loaded.extract(held_out))
        assert json.dumps(original_rows) == json.dumps(loaded_rows)
        assert original_rows  # non-degenerate

    def test_xfer_only_vocabulary(self, global_model, registry):
        model, _ = global_model
        registry.save_global(model)
        data = json.loads(registry.global_path.read_text())
        assert data["kind"] == "ceres-global-model"
        assert data["vocabulary"]["site"] == []
        assert data["vocabulary"]["xfer"]

    def test_missing_global(self, registry):
        with pytest.raises(RegistryError, match="train-global"):
            registry.load_global()

    def test_global_version_gate(self, global_model, registry):
        model, _ = global_model
        path = registry.save_global(model)
        data = json.loads(path.read_text())
        data["format_version"] = FORMAT_VERSION + 1
        path.write_text(json.dumps(data))
        with pytest.raises(RegistryError, match="format_version"):
            registry.load_global()
        assert registry.delete_global()
        assert not registry.has_global()

    def test_site_loader_rejects_global_artifact(self, global_model, registry):
        """Feeding the global payload through the site loader fails the
        kind check instead of half-parsing."""
        model, _ = global_model
        registry.save_global(model)
        payload = registry.global_path.read_text()
        site_path = registry.path_for("imposter")
        site_path.parent.mkdir(parents=True, exist_ok=True)
        site_path.write_text(payload)
        with pytest.raises(RegistryError, match="not a site-model"):
            registry.load("imposter")


class TestRegistryErrors:
    def test_missing_site(self, registry):
        with pytest.raises(RegistryError, match="no artifact"):
            registry.load("never-trained")

    def test_missing_site_error_truncates_site_list(
        self, trained_site, registry
    ):
        """A large registry names only the first 10 sites (+N more)."""
        site, config, _, result = trained_site
        for index in range(14):
            registry.save(
                SiteModel.from_result(f"site-{index:02d}", config, result)
            )
        with pytest.raises(RegistryError) as excinfo:
            registry.load("never-trained")
        message = str(excinfo.value)
        assert "(+4 more)" in message
        assert "site-09" in message
        assert "site-10" not in message

    def test_corrupted_artifact(self, trained_site, registry):
        site, config, _, result = trained_site
        registry.save(SiteModel.from_result(site, config, result))
        registry.path_for(site).write_text("{ this is not json")
        with pytest.raises(RegistryError, match="corrupt"):
            registry.load(site)

    def test_version_mismatch(self, trained_site, registry):
        site, config, _, result = trained_site
        path = registry.save(SiteModel.from_result(site, config, result))
        data = json.loads(path.read_text())
        data["format_version"] = FORMAT_VERSION + 99
        path.write_text(json.dumps(data))
        with pytest.raises(RegistryError, match="format_version"):
            registry.load(site)

    def test_wrong_kind(self, registry, tmp_path):
        path = registry.path_for("notamodel")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({"format_version": FORMAT_VERSION, "kind": "kb"}))
        with pytest.raises(RegistryError, match="not a site-model"):
            registry.load("notamodel")

    def test_truncated_structure(self, trained_site, registry):
        site, config, _, result = trained_site
        path = registry.save(SiteModel.from_result(site, config, result))
        data = json.loads(path.read_text())
        del data["clusters"][0]["model"]["classifier"]
        path.write_text(json.dumps(data))
        with pytest.raises(RegistryError, match="malformed"):
            registry.load(site)

    def test_non_object_artifact(self, registry):
        path = registry.path_for("weird")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("[1, 2, 3]")
        with pytest.raises(RegistryError, match="expected a JSON object"):
            registry.load("weird")


class TestDurableWrites:
    """_write_atomic's crash contract: fsync before rename, and a failed
    write leaves neither a temp file nor a torn artifact behind."""

    def test_write_fsyncs_temp_before_replace(
        self, trained_site, registry, monkeypatch
    ):
        import os as os_module

        # The durable-write mechanics live in resilience.atomic_write;
        # patch the os seams it calls through.
        import repro.runtime.resilience as resilience_module

        events = []
        real_fsync, real_replace = os_module.fsync, os_module.replace
        monkeypatch.setattr(
            resilience_module.os, "fsync",
            lambda fd: (events.append("fsync"), real_fsync(fd))[1],
        )
        monkeypatch.setattr(
            resilience_module.os, "replace",
            lambda a, b: (events.append("replace"), real_replace(a, b))[1],
        )
        site, config, _, result = trained_site
        registry.save(SiteModel.from_result(site, config, result))
        assert "fsync" in events and "replace" in events
        assert events.index("fsync") < events.index("replace")

    def test_temp_file_never_survives_failed_write(
        self, trained_site, registry
    ):
        from repro.testing.faults import FaultError, FaultPlan, FaultSpec, active

        site, config, _, result = trained_site
        model = SiteModel.from_result(site, config, result)
        plan = FaultPlan(
            [FaultSpec("registry.write_temp", action="corrupt-write")]
        )
        with active(plan), pytest.raises(FaultError):
            registry.save(model)
        # Neither the temp file nor a torn artifact is left behind.
        assert list(registry.root.glob("*.tmp*")) == []
        assert not registry.path_for(site).exists()

    def test_failed_overwrite_preserves_old_artifact(
        self, trained_site, registry
    ):
        from repro.testing.faults import FaultError, FaultPlan, FaultSpec, active

        site, config, _, result = trained_site
        model = SiteModel.from_result(site, config, result)
        registry.save(model)
        before = registry.path_for(site).read_bytes()
        plan = FaultPlan(
            [FaultSpec("registry.write_temp", action="corrupt-write")]
        )
        with active(plan), pytest.raises(FaultError):
            registry.save(model)
        assert registry.path_for(site).read_bytes() == before
        assert list(registry.root.glob("*.tmp*")) == []
        registry.load(site)  # still a valid artifact
