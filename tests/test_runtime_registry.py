"""Registry round-trips: save → load → extract must be exact."""

import json

import numpy as np
import pytest

from repro.core.config import CeresConfig
from repro.core.pipeline import CeresPipeline
from repro.datasets import generate_swde, seed_kb_for
from repro.runtime import (
    FORMAT_VERSION,
    ModelRegistry,
    RegistryError,
    SiteModel,
    site_model_from_dict,
    site_model_to_dict,
)


@pytest.fixture(scope="module")
def trained_site():
    dataset = generate_swde("movie", n_sites=2, pages_per_site=16, seed=2)
    kb = seed_kb_for(dataset, 2)
    site = dataset.sites[1]
    documents = [page.document for page in site.pages]
    config = CeresConfig(confidence_threshold=0.6)
    pipeline = CeresPipeline(kb, config)
    result = pipeline.run(documents, documents)
    assert result.extractions, "fixture produced no extractions"
    return site.name, config, documents, result


@pytest.fixture()
def registry(tmp_path):
    return ModelRegistry(tmp_path / "models")


def _extraction_rows(extractions):
    return [
        (e.page_index, e.subject, e.predicate, e.object, e.confidence)
        for e in extractions
    ]


class TestRoundTrip:
    def test_extractions_byte_identical(self, trained_site, registry):
        site, config, documents, result = trained_site
        site_model = SiteModel.from_result(site, config, result)
        registry.save(site_model)
        loaded = registry.load(site)

        pools = {
            "memory": SiteModel.from_result(site, config, result),
            "disk": loaded,
        }
        serialized = {}
        for label, model in pools.items():
            from repro.core.extraction.extractor import ClusterExtractorPool

            pool = ClusterExtractorPool(
                [(c.signature, c.model) for c in model.clusters], model.config
            )
            rows = _extraction_rows(pool.extract(documents))
            serialized[label] = json.dumps(rows)
        assert serialized["memory"] == serialized["disk"]
        # And both reproduce the pipeline's own extractions byte for byte.
        assert json.dumps(_extraction_rows(result.extractions)) == serialized["disk"]

    def test_components_preserved(self, trained_site, registry):
        site, config, documents, result = trained_site
        site_model = SiteModel.from_result(site, config, result)
        registry.save(site_model)
        loaded = registry.load(site)

        assert loaded.site == site
        assert loaded.config == config  # incl. tuple-typed struct_attributes
        assert len(loaded.clusters) == len(site_model.clusters)
        for original, restored in zip(site_model.clusters, loaded.clusters):
            assert restored.signature == original.signature
            assert (
                restored.model.feature_extractor.frequent_strings
                == original.model.feature_extractor.frequent_strings
            )
            assert (
                restored.model.vectorizer.vocabulary_
                == original.model.vectorizer.vocabulary_
            )
            assert np.array_equal(
                restored.model.classifier.coef_, original.model.classifier.coef_
            )
            assert np.array_equal(
                restored.model.classifier.intercept_,
                original.model.classifier.intercept_,
            )
            assert list(restored.model.classifier.classes_) == list(
                original.model.classifier.classes_
            )

    def test_dict_round_trip_stable(self, trained_site):
        site, config, _, result = trained_site
        site_model = SiteModel.from_result(site, config, result)
        once = site_model_to_dict(site_model)
        twice = site_model_to_dict(site_model_from_dict(once))
        assert json.dumps(once, sort_keys=True) == json.dumps(twice, sort_keys=True)

    def test_sites_listing_and_has(self, trained_site, registry):
        site, config, _, result = trained_site
        assert registry.sites() == []
        assert not registry.has(site)
        registry.save(SiteModel.from_result(site, config, result))
        assert registry.sites() == [site]
        assert registry.has(site)
        assert registry.delete(site)
        assert registry.sites() == []

    def test_site_key_is_filesystem_safe(self, trained_site, registry):
        _, config, _, result = trained_site
        weird = "https://example.com/a/b?c=1"
        registry.save(SiteModel.from_result(weird, config, result))
        assert registry.sites() == [weird]
        assert "/" not in registry.path_for(weird).name
        assert registry.load(weird).site == weird


class TestRegistryErrors:
    def test_missing_site(self, registry):
        with pytest.raises(RegistryError, match="no artifact"):
            registry.load("never-trained")

    def test_corrupted_artifact(self, trained_site, registry):
        site, config, _, result = trained_site
        registry.save(SiteModel.from_result(site, config, result))
        registry.path_for(site).write_text("{ this is not json")
        with pytest.raises(RegistryError, match="corrupt"):
            registry.load(site)

    def test_version_mismatch(self, trained_site, registry):
        site, config, _, result = trained_site
        path = registry.save(SiteModel.from_result(site, config, result))
        data = json.loads(path.read_text())
        data["format_version"] = FORMAT_VERSION + 99
        path.write_text(json.dumps(data))
        with pytest.raises(RegistryError, match="format_version"):
            registry.load(site)

    def test_wrong_kind(self, registry, tmp_path):
        path = registry.path_for("notamodel")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({"format_version": FORMAT_VERSION, "kind": "kb"}))
        with pytest.raises(RegistryError, match="not a site-model"):
            registry.load("notamodel")

    def test_truncated_structure(self, trained_site, registry):
        site, config, _, result = trained_site
        path = registry.save(SiteModel.from_result(site, config, result))
        data = json.loads(path.read_text())
        del data["clusters"][0]["model"]["classifier"]
        path.write_text(json.dumps(data))
        with pytest.raises(RegistryError, match="malformed"):
            registry.load(site)

    def test_non_object_artifact(self, registry):
        path = registry.path_for("weird")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("[1, 2, 3]")
        with pytest.raises(RegistryError, match="expected a JSON object"):
            registry.load("weird")
