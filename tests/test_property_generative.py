"""Generative property tests over the DOM/render/match stack.

Hypothesis builds random page structures through the PageBuilder and
checks the system-level invariants that everything else relies on:

* renderer emissions align 1:1 with parser text fields (the ground-truth
  alignment DESIGN.md calls the central invariant);
* every node's XPath evaluates back to that node;
* serialize → parse is a fixed point;
* page signatures are invariant under list-length changes.
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.templates import page_signature
from repro.datasets.render import GeneratedPage, PageBuilder
from repro.dom.parser import parse_html
from repro.dom.serialize import to_html
from repro.dom.xpath import evaluate_xpath, xpath_steps, format_steps

# Visible text with at least one non-space character.
visible_text = st.text(
    alphabet=string.ascii_letters + string.digits + " &<>'\"!,.é",
    min_size=1,
    max_size=20,
).filter(lambda s: s.strip())

tags = st.sampled_from(["div", "span", "p", "section", "article", "b", "em"])


@st.composite
def page_spec(draw):
    """A random nested block structure: list of (depth-delta, texts)."""
    n_blocks = draw(st.integers(1, 6))
    blocks = []
    for _ in range(n_blocks):
        tag = draw(tags)
        texts = draw(st.lists(visible_text, min_size=0, max_size=3))
        nested = draw(st.booleans())
        blocks.append((tag, texts, nested))
    return blocks


def build(blocks) -> GeneratedPage:
    builder = PageBuilder()
    builder.open("html").open("body")
    for index, (tag, texts, nested) in enumerate(blocks):
        builder.open(tag, class_=f"c{index}")
        for text in texts:
            builder.leaf("span", text)
        if nested:
            builder.open("div", class_="inner")
            builder.leaf("p", f"inner {index}")
            builder.close("div")
        builder.close(tag)
    builder.close("body").close("html")
    return GeneratedPage("prop", builder.html(), builder.emissions)


class TestAlignmentInvariant:
    @settings(max_examples=60, deadline=None)
    @given(page_spec())
    def test_emissions_align_with_text_fields(self, blocks):
        page = build(blocks)
        fields = page.document.text_fields()  # raises on misalignment
        assert len(fields) == len(page.emissions)
        for node, emission in zip(fields, page.emissions):
            assert node.text == emission.text

    @settings(max_examples=60, deadline=None)
    @given(page_spec())
    def test_every_node_xpath_roundtrips(self, blocks):
        page = build(blocks)
        root = page.document.root
        for field in page.document.text_fields():
            assert evaluate_xpath(root, field.xpath) is field
            assert format_steps(xpath_steps(field)) == field.xpath

    @settings(max_examples=40, deadline=None)
    @given(page_spec())
    def test_serialize_parse_fixed_point(self, blocks):
        page = build(blocks)
        once = to_html(page.document.root)
        twice = to_html(parse_html(once).root)
        assert once == twice

    @settings(max_examples=40, deadline=None)
    @given(page_spec())
    def test_node_at_consistency(self, blocks):
        page = build(blocks)
        doc = page.document
        for element in doc.iter_elements():
            assert doc.node_at(element.xpath) is element


class TestSignatureInvariant:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 4), st.integers(5, 12))
    def test_list_length_invariance(self, short, long):
        def page(n):
            builder = PageBuilder()
            builder.open("html").open("body")
            builder.open("ul", class_="items")
            for i in range(n):
                builder.open("li")
                builder.text(f"item {i}")
                builder.close("li")
            builder.close("ul")
            builder.close("body").close("html")
            return parse_html(builder.html())

        assert page_signature(page(short)) == page_signature(page(long))
