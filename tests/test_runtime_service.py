"""The serving fast path: cached extractors, no retraining, cold parity."""

import pytest

import repro.core.extraction.extractor as extractor_module
from repro.core.config import CeresConfig
from repro.core.extraction.extractor import CeresExtractor, ClusterExtractorPool
from repro.core.pipeline import CeresPipeline
from repro.datasets import generate_swde, seed_kb_for
from repro.runtime import (
    ExtractionService,
    ModelRegistry,
    RegistryError,
    SiteModel,
)


@pytest.fixture(scope="module")
def trained_site():
    dataset = generate_swde("movie", n_sites=2, pages_per_site=16, seed=4)
    kb = seed_kb_for(dataset, 4)
    site = dataset.sites[1]
    documents = [page.document for page in site.pages]
    config = CeresConfig()
    pipeline = CeresPipeline(kb, config)
    result = pipeline.run(documents, documents)
    assert result.extractions
    return site.name, config, documents, result


def _rows(extractions):
    return [
        (e.page_index, e.subject, e.predicate, e.object, e.confidence)
        for e in extractions
    ]


class CountingExtractor(CeresExtractor):
    constructed = 0

    def __init__(self, *args, **kwargs):
        type(self).constructed += 1
        super().__init__(*args, **kwargs)


@pytest.fixture()
def count_extractors(monkeypatch):
    CountingExtractor.constructed = 0
    monkeypatch.setattr(extractor_module, "CeresExtractor", CountingExtractor)
    return CountingExtractor


class TestWarmPathParity:
    def test_service_matches_pipeline(self, trained_site):
        site, config, documents, result = trained_site
        service = ExtractionService()
        service.add_site_model(SiteModel.from_result(site, config, result))
        warm = service.extract_pages(site, documents)
        assert _rows(warm) == _rows(result.extractions)

    def test_registry_backed_service_matches(self, trained_site, tmp_path):
        site, config, documents, result = trained_site
        registry = ModelRegistry(tmp_path / "models")
        registry.save(SiteModel.from_result(site, config, result))
        service = ExtractionService(registry)
        warm = service.extract_pages(site, documents)
        assert _rows(warm) == _rows(result.extractions)

    def test_threshold_override(self, trained_site):
        site, config, documents, result = trained_site
        service = ExtractionService()
        service.add_site_model(SiteModel.from_result(site, config, result))
        low = service.extract_pages(site, documents, threshold=0.5)
        high = service.extract_pages(site, documents, threshold=0.95)
        assert len(high) <= len(low)
        assert all(e.confidence >= 0.95 for e in high)

    def test_candidates_rethreshold(self, trained_site):
        site, config, documents, result = trained_site
        service = ExtractionService()
        service.add_site_model(SiteModel.from_result(site, config, result))
        pages = service.candidates(site, documents)
        assert len(pages) == len(documents)
        rethresholded = [e for page in pages for e in page.extractions(0.5)]
        assert _rows(rethresholded) == _rows(
            service.extract_pages(site, documents, threshold=0.5)
        )


class TestExtractorCaching:
    def test_pipeline_builds_one_extractor_per_cluster(
        self, trained_site, count_extractors
    ):
        _, config, documents, result = trained_site
        modeled = [c for c in result.cluster_results if c.model is not None]
        pool = ClusterExtractorPool(
            [(c.signature, c.model) for c in modeled], config
        )
        pool.candidates(documents)
        # One per cluster — not one per page (the old per-page behavior
        # would have constructed len(documents) of them).
        assert count_extractors.constructed == len(modeled)
        assert len(documents) > len(modeled)

    def test_service_reuses_pool_across_batches(self, trained_site, count_extractors):
        site, config, documents, result = trained_site
        service = ExtractionService()
        service.add_site_model(SiteModel.from_result(site, config, result))
        service.extract_pages(site, documents[:4])
        constructed_after_first = count_extractors.constructed
        service.extract_pages(site, documents[4:])
        assert count_extractors.constructed == constructed_after_first

    def test_single_cluster_skips_assignment(self, trained_site):
        """One modeled cluster: every page must assign to it, so the
        batched path skips signatures and the memo stays cold."""
        site, config, documents, result = trained_site
        service = ExtractionService()
        service.add_site_model(SiteModel.from_result(site, config, result))
        pool = service.pool(site)
        assert len(pool) == 1
        service.extract_pages(site, documents)
        assert len(pool._assignments) == 0
        assert pool._assignments.stats().misses == 0

    def test_assignment_memoized(self, trained_site):
        """With several modeled clusters, page→cluster assignment runs
        and is memoized by page signature."""
        site, config, documents, result = trained_site
        model = result.cluster_results[0].model
        signature = result.cluster_results[0].signature
        pool = ClusterExtractorPool(
            [(signature, model), (frozenset({"/html/body/table"}), model)],
            config,
        )
        assert len(pool._assignments) == 0
        pool.extract(documents)
        assert len(pool._assignments) > 0  # signatures now cached
        # A second batch over the same documents hits the memo (their
        # signatures are cached on the Document, the assignment here).
        before = pool._assignments.stats()
        pool.extract(documents)
        after = pool._assignments.stats()
        assert after.size == before.size
        assert after.misses == before.misses  # no recomputation
        assert after.hits > before.hits


class TestServiceMisc:
    def test_no_registry_unknown_site(self):
        service = ExtractionService()
        with pytest.raises(RegistryError, match="no registry"):
            service.extract_pages("nowhere", [])

    def test_available_and_loaded_sites(self, trained_site, tmp_path):
        site, config, documents, result = trained_site
        registry = ModelRegistry(tmp_path / "models")
        registry.save(SiteModel.from_result(site, config, result))
        service = ExtractionService(registry)
        assert service.loaded_sites() == []
        assert service.available_sites() == [site]
        service.extract_pages(site, documents[:1])
        assert service.loaded_sites() == [site]

    def test_evict_then_reload(self, trained_site, tmp_path):
        site, config, documents, result = trained_site
        registry = ModelRegistry(tmp_path / "models")
        registry.save(SiteModel.from_result(site, config, result))
        service = ExtractionService(registry)
        first = service.extract_pages(site, documents)
        service.evict(site)
        assert service.loaded_sites() == []
        assert _rows(service.extract_pages(site, documents)) == _rows(first)

    def test_page_caches_bounded_across_batches(self, trained_site):
        site, config, documents, result = trained_site
        service = ExtractionService()
        service.add_site_model(SiteModel.from_result(site, config, result))
        for _ in range(3):
            service.extract_pages(site, documents)
        for extractor in service.pool(site).extractors:
            registry = extractor.model.feature_extractor._page_registry
            assert len(registry) <= registry.capacity

    def test_empty_site_model_extracts_nothing(self):
        service = ExtractionService()
        service.add_site_model(SiteModel("empty", CeresConfig(), []))
        assert service.extract_pages("empty", []) == []


class TestFusedFactQueries:
    def test_fused_facts_over_served_sites(self, trained_site):
        """Serving the same model under two site names: every fact gains
        two-site support and the noisy-OR lifts its score above the best
        single extraction confidence."""
        site, config, documents, result = trained_site
        service = ExtractionService()
        service.add_site_model(SiteModel.from_result("mirror_a", config, result))
        service.add_site_model(SiteModel.from_result("mirror_b", config, result))
        facts = service.fused_facts(
            {"mirror_a": documents, "mirror_b": documents}
        )
        assert facts
        for fact in facts:
            assert fact.n_sites == 2
            assert fact.score >= max(fact.site_support.values())
        # min_sites filters apply.
        assert service.fused_facts(
            {"mirror_a": documents}, min_sites=2
        ) == []

    def test_fused_facts_deterministic_across_calls(self, trained_site):
        from repro.fusion import fused_fact_row

        site, config, documents, result = trained_site
        service = ExtractionService()
        service.add_site_model(SiteModel.from_result(site, config, result))
        first = [
            fused_fact_row(f)
            for f in service.fused_facts({site: documents})
        ]
        second = [
            fused_fact_row(f)
            for f in service.fused_facts({site: documents})
        ]
        assert first == second
        assert first


class TestSiteResidency:
    def _site_model(self, name):
        return SiteModel(name, CeresConfig(), [])

    def test_lru_eviction_at_capacity(self):
        service = ExtractionService(max_resident_sites=2)
        for name in ("a", "b", "c"):
            service.add_site_model(self._site_model(name))
        assert service.loaded_sites() == ["b", "c"]
        assert service.cache_stats()["sites"]["evictions"] == 1

    def test_serving_refreshes_recency(self):
        service = ExtractionService(max_resident_sites=2)
        service.add_site_model(self._site_model("a"))
        service.add_site_model(self._site_model("b"))
        service.extract_pages("a", [])  # "a" becomes most recently served
        service.add_site_model(self._site_model("c"))
        assert service.loaded_sites() == ["a", "c"]

    def test_evicted_site_reloads_from_registry(self, trained_site, tmp_path):
        site, config, documents, result = trained_site
        registry = ModelRegistry(tmp_path / "models")
        registry.save(SiteModel.from_result(site, config, result))
        service = ExtractionService(registry, max_resident_sites=1)
        first = service.extract_pages(site, documents)
        service.add_site_model(self._site_model("crowder"))
        service.add_site_model(self._site_model("crowder2"))
        assert site not in service.loaded_sites()
        # Transparent reload: same site key serves identical rows again.
        assert _rows(service.extract_pages(site, documents)) == _rows(first)

    def test_evicted_in_memory_site_without_registry_errors(self):
        service = ExtractionService(max_resident_sites=1)
        service.add_site_model(self._site_model("a"))
        service.add_site_model(self._site_model("b"))
        with pytest.raises(RegistryError, match="no registry"):
            service.extract_pages("a", [])


class TestCacheStats:
    def test_stats_shape_and_counters(self, trained_site):
        site, config, documents, result = trained_site
        service = ExtractionService()
        service.add_site_model(SiteModel.from_result(site, config, result))
        before = service.cache_stats()["per_site"].get(site)
        service.extract_pages(site, documents)
        stats = service.cache_stats()
        assert stats["sites"]["size"] == 1
        per_site = stats["per_site"][site]
        assert set(per_site) == {"feature_registry", "cluster_assignment"}
        for name in ("hits", "misses", "evictions", "size", "capacity"):
            assert name in per_site["feature_registry"]
        # The batched engine compiles features from the vocabulary and
        # never consults the per-page registry LRU; serving leaves its
        # counters exactly where training left them (the fixture's model
        # is shared, so the absolute counts are not zero).
        service.extract_pages(site, documents)
        after = service.cache_stats()["per_site"][site]
        assert after["feature_registry"] == per_site["feature_registry"]
        if before is not None:
            assert per_site["feature_registry"] == before["feature_registry"]

    def test_stats_do_not_touch_recency(self):
        service = ExtractionService(max_resident_sites=2)
        service.add_site_model(SiteModel("a", CeresConfig(), []))
        service.add_site_model(SiteModel("b", CeresConfig(), []))
        service.cache_stats()  # reading stats must not refresh "a" or "b"
        hits_before = service.cache_stats()["sites"]["hits"]
        assert service.cache_stats()["sites"]["hits"] == hits_before
