"""Chaos tests for ``repro serve-http``: a real subprocess, real
signals, injected faults — asserting the crash-safety contract from the
outside.

The contract under test:

* every request the server *accepts* is answered exactly once, even
  when SIGTERM lands mid-flight;
* SIGTERM drains (in-flight work finishes, the listener refuses new
  work) and the process exits 0;
* SIGKILL is survivable for the fleet: the port is released and
  nothing lingers.
"""

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core.config import CeresConfig
from repro.core.pipeline import CeresPipeline
from repro.datasets import generate_swde, seed_kb_for
from repro.runtime import ModelRegistry, SiteModel
from repro.testing.faults import ENV_VAR, FaultPlan, FaultSpec
from repro.transfer import collect_site_examples, train_global

REPO_ROOT = Path(__file__).resolve().parent.parent
PORT_MARKER = "serving on http://"


@pytest.fixture(scope="module")
def world(tmp_path_factory):
    """A registry directory on disk plus the trained site's raw HTML."""
    dataset = generate_swde("movie", n_sites=2, pages_per_site=10, seed=13)
    kb = seed_kb_for(dataset, 13)
    config = CeresConfig()
    site = dataset.sites[1]
    documents = [page.document for page in site.pages]
    result = CeresPipeline(kb, config).run(documents, documents)
    assert result.extractions
    registry_dir = tmp_path_factory.mktemp("registry")
    registry = ModelRegistry(registry_dir)
    registry.save(SiteModel.from_result(site.name, config, result))
    donor = dataset.sites[0]
    pool = collect_site_examples(
        donor.name, kb, [page.document for page in donor.pages], config
    )
    predicates = sorted(
        {example.label for example in pool.examples if example.label != "OTHER"}
    )
    registry.save_global(train_global([pool], predicates, config=config))
    return {
        "registry": registry_dir,
        "site": site.name,
        "html": [page.html for page in site.pages],
    }


class ServerProcess:
    """Launch ``repro serve-http`` and watch its stderr for the port."""

    def __init__(self, registry, *extra_args, fault_plan=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env.pop(ENV_VAR, None)
        if fault_plan is not None:
            env[ENV_VAR] = fault_plan.to_json()
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve-http",
                "--registry", str(registry), "--port", "0", *extra_args,
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
        )
        self.stderr_lines = []
        self.port = self._await_port(timeout=60.0)
        self._drainer = threading.Thread(target=self._drain_stderr)
        self._drainer.daemon = True
        self._drainer.start()

    def _await_port(self, timeout):
        started = time.monotonic()
        while True:
            line = self.proc.stderr.readline()
            if not line:
                raise AssertionError(
                    "server exited before announcing its port: "
                    + "".join(self.stderr_lines)
                )
            self.stderr_lines.append(line)
            if PORT_MARKER in line:
                address = line.split(PORT_MARKER, 1)[1].split()[0]
                return int(address.rsplit(":", 1)[1])
            if time.monotonic() - started > timeout:
                raise AssertionError(
                    "no port line within budget: " + "".join(self.stderr_lines)
                )

    def _drain_stderr(self):
        for line in self.proc.stderr:
            self.stderr_lines.append(line)

    def request(self, payload, timeout=30):
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout)
        body = (
            payload if isinstance(payload, (str, bytes))
            else json.dumps(payload)
        )
        try:
            conn.request("POST", "/extract", body=body)
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()

    def terminate_and_wait(self, timeout=30):
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=timeout)

    def kill(self):
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=10)


@pytest.fixture()
def launch(world):
    spawned = []

    def _launch(*extra_args, fault_plan=None):
        server = ServerProcess(
            world["registry"], *extra_args, fault_plan=fault_plan
        )
        spawned.append(server)
        return server

    yield _launch
    for server in spawned:
        server.kill()


def _page_payload(world, index, url=None):
    return {
        "site": world["site"],
        "pages": [
            {"html": world["html"][index], "url": url or f"p{index}"}
        ],
    }


class TestSigterm:
    def test_mid_flight_request_survives_drain(self, world, launch):
        server = launch("--threads", "1", "--batch-linger", "0.3")
        results = []

        def fire(index):
            results.append(server.request(_page_payload(world, index)))

        # With linger on, the worker holds the first request open long
        # enough for SIGTERM to land while it is genuinely in flight.
        thread = threading.Thread(target=fire, args=(0,))
        thread.start()
        time.sleep(0.1)
        code = server.terminate_and_wait()
        thread.join(timeout=30)
        assert code == 0
        assert len(results) == 1
        status, data = results[0]
        assert status == 200
        assert data["extractions"] >= 1
        assert any("drained, exiting" in line for line in server.stderr_lines)

    def test_chaos_mix_every_accepted_request_answered_once(
        self, world, launch
    ):
        """Concurrent good, malformed, and poison traffic under an
        injected fault plan; SIGTERM lands mid-storm.  Every request
        that reached the server gets exactly one definitive reply."""
        plan = FaultPlan(
            [
                FaultSpec(
                    "serving.batch", site=world["site"],
                    action="raise-transient", times=1,
                ),
                FaultSpec(
                    "serving.handle", site=world["site"],
                    action="raise-overload", times=1, skip=2,
                ),
            ]
        )
        server = launch("--threads", "2", fault_plan=plan)
        bomb = "<div>" * 400 + "x" + "</div>" * 400
        payloads = [
            _page_payload(world, 0),
            _page_payload(world, 1),
            "{not json",
            {"site": world["site"], "pages": [{"html": bomb}]},
            _page_payload(world, 2),
            _page_payload(world, 3),
            _page_payload(world, 4),
        ]
        results = [None] * len(payloads)

        def fire(index):
            try:
                results[index] = server.request(payloads[index])
            except OSError:
                # Connection refused/reset: the drain won the race before
                # this request was accepted — a definitive non-answer.
                results[index] = ("refused", None)

        threads = [
            threading.Thread(target=fire, args=(index,))
            for index in range(len(payloads))
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.4)
        code = server.terminate_and_wait()
        for thread in threads:
            thread.join(timeout=30)
        assert code == 0
        # Exactly one result per request — no hangs, no double answers.
        assert all(result is not None for result in results)
        for payload, result in zip(payloads, results):
            status = result[0]
            if status == "refused":
                continue
            if payload == "{not json":
                assert status == 400
            elif isinstance(payload, dict) and payload["pages"][0][
                "html"
            ] == bomb:
                # 422 from the parse cap — unless the injected handle
                # fault or the drain intercepted it first.
                assert status in (422, 429, 503)
            else:
                # served, shed, injected-fault 503/429, or drained 503/504
                assert status in (200, 429, 503, 504)

    def test_sigterm_with_empty_queue_exits_promptly(self, world, launch):
        server = launch("--threads", "1")
        status, _ = server.request(_page_payload(world, 0))
        assert status == 200
        started = time.monotonic()
        code = server.terminate_and_wait(timeout=15)
        assert code == 0
        assert time.monotonic() - started < 10.0


class TestSigkill:
    def test_port_is_released_and_nothing_lingers(self, world, launch):
        server = launch("--threads", "1")
        status, _ = server.request(_page_payload(world, 0))
        assert status == 200
        server.proc.send_signal(signal.SIGKILL)
        assert server.proc.wait(timeout=10) == -signal.SIGKILL
        # The kernel reclaims the socket: new connections must fail fast,
        # not hang against a half-dead listener.
        with pytest.raises(OSError):
            conn = http.client.HTTPConnection(
                "127.0.0.1", server.port, timeout=5
            )
            try:
                conn.request("GET", "/healthz")
                conn.getresponse()
            finally:
                conn.close()
