"""Tests for repro.datasets.render (PageBuilder, ground-truth alignment)."""

import pytest

from repro.datasets.render import Emission, GeneratedPage, PageBuilder, PageTruth


class TestPageBuilder:
    def test_basic_structure(self):
        builder = PageBuilder()
        builder.open("html").open("body")
        builder.leaf("h1", "Title", predicate="name")
        builder.close("body").close("html")
        html = builder.html()
        assert html == "<html><body><h1>Title</h1></body></html>"
        assert builder.emissions == [Emission("Title", "name", None)]

    def test_escaping(self):
        builder = PageBuilder()
        builder.open("html").open("body")
        builder.leaf("p", "Tom & Jerry <3")
        builder.close("body").close("html")
        assert "Tom &amp; Jerry &lt;3" in builder.html()

    def test_attribute_escaping(self):
        builder = PageBuilder()
        builder.open("div", title='say "hi"')
        builder.text("x")
        builder.close("div")
        assert 'title="say &quot;hi&quot;"' in builder.html()

    def test_class_underscore_stripped(self):
        builder = PageBuilder()
        builder.open("div", class_="main")
        builder.text("x")
        builder.close("div")
        assert '<div class="main">' in builder.html()

    def test_whitespace_only_text_rejected(self):
        builder = PageBuilder()
        with pytest.raises(ValueError):
            builder.text("   ")

    def test_mismatched_close_rejected(self):
        builder = PageBuilder()
        builder.open("div")
        with pytest.raises(ValueError):
            builder.close("span")

    def test_unclosed_tags_rejected(self):
        builder = PageBuilder()
        builder.open("div")
        builder.text("x")
        with pytest.raises(ValueError):
            builder.html()

    def test_element_context_manager(self):
        builder = PageBuilder()
        with builder.element("div", class_="a"):
            builder.text("inside")
        assert builder.html() == '<div class="a">inside</div>'

    def test_void(self):
        builder = PageBuilder()
        builder.open("p").text("a").void("br").text("b").close("p")
        assert builder.html() == "<p>a<br>b</p>"


class TestEmission:
    def test_object_value_defaults_to_text(self):
        emission = Emission("June 30, 1989", "release_date", "1989-06-30")
        assert emission.object_value == "1989-06-30"
        assert Emission("Drama", "genre").object_value == "Drama"
        assert Emission("label text").object_value is None


class TestPageTruth:
    def test_from_emissions(self):
        emissions = [
            Emission("Title", "name"),
            Emission("Director:", None),
            Emission("Jane Doe", "directed_by"),
            Emission("Drama", "genre"),
            Emission("Drama", "genre"),  # duplicate mention
        ]
        truth = PageTruth.from_emissions(emissions)
        assert truth.objects["directed_by"] == ["Jane Doe"]
        assert truth.objects["genre"] == ["Drama"]  # deduplicated
        assert truth.surfaces["genre"] == {"Drama"}
        assert "None" not in truth.objects


class TestGeneratedPage:
    def make_page(self) -> GeneratedPage:
        builder = PageBuilder()
        builder.open("html").open("body")
        builder.leaf("h1", "The Title", predicate="name")
        builder.leaf("span", "Jane Doe", predicate="directed_by")
        builder.leaf("span", "decoration")
        builder.close("body").close("html")
        return GeneratedPage("test:1", builder.html(), builder.emissions,
                             topic_entity_id="f1", topic_name="The Title")

    def test_alignment(self):
        page = self.make_page()
        aligned = page.aligned()
        assert [(n.text, e.text) for n, e in aligned] == [
            ("The Title", "The Title"),
            ("Jane Doe", "Jane Doe"),
            ("decoration", "decoration"),
        ]

    def test_emission_for_node(self):
        page = self.make_page()
        node = page.document.text_fields()[1]
        emission = page.emission_for_node(node)
        assert emission.predicate == "directed_by"
        foreign = self.make_page().document.text_fields()[0]
        assert page.emission_for_node(foreign) is None

    def test_misalignment_detected(self):
        page = self.make_page()
        page.emissions.append(Emission("ghost"))
        with pytest.raises(AssertionError):
            _ = page.document

    def test_truth_cached(self):
        page = self.make_page()
        assert page.truth is page.truth
