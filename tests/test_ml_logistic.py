"""Tests for repro.ml.logistic (SoftmaxRegression)."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.logistic import SoftmaxRegression


def separable_data(n_per_class=30, seed=0):
    rng = np.random.RandomState(seed)
    X0 = rng.randn(n_per_class, 2) + [3, 0]
    X1 = rng.randn(n_per_class, 2) + [-3, 0]
    X2 = rng.randn(n_per_class, 2) + [0, 4]
    X = sp.csr_matrix(np.vstack([X0, X1, X2]))
    y = np.array(["a"] * n_per_class + ["b"] * n_per_class + ["c"] * n_per_class)
    return X, y


class TestSoftmaxRegression:
    def test_fits_separable_data(self):
        X, y = separable_data()
        model = SoftmaxRegression().fit(X, y)
        accuracy = float(np.mean(model.predict(X) == y))
        assert accuracy > 0.95

    def test_probabilities_sum_to_one(self):
        X, y = separable_data()
        model = SoftmaxRegression().fit(X, y)
        probabilities = model.predict_proba(X)
        assert np.allclose(probabilities.sum(axis=1), 1.0)
        assert (probabilities >= 0).all()

    def test_classes_sorted(self):
        X, y = separable_data()
        model = SoftmaxRegression().fit(X, y)
        assert list(model.classes_) == ["a", "b", "c"]

    def test_binary(self):
        rng = np.random.RandomState(1)
        X = sp.csr_matrix(np.vstack([rng.randn(20, 3) + 2, rng.randn(20, 3) - 2]))
        y = [1] * 20 + [0] * 20
        model = SoftmaxRegression().fit(X, y)
        assert float(np.mean(model.predict(X) == y)) > 0.9

    def test_single_class_degenerate(self):
        X = sp.csr_matrix(np.ones((5, 2)))
        model = SoftmaxRegression().fit(X, ["only"] * 5)
        assert list(model.predict(X)) == ["only"] * 5
        assert np.allclose(model.predict_proba(X), 1.0)

    def test_regularization_shrinks_weights(self):
        X, y = separable_data()
        strong = SoftmaxRegression(C=0.01).fit(X, y)
        weak = SoftmaxRegression(C=100.0).fit(X, y)
        assert np.linalg.norm(strong.coef_) < np.linalg.norm(weak.coef_)

    def test_log_loss_better_than_uniform(self):
        X, y = separable_data()
        model = SoftmaxRegression().fit(X, y)
        assert model.log_loss(X, y) < np.log(3)

    def test_invalid_C(self):
        with pytest.raises(ValueError):
            SoftmaxRegression(C=0)

    def test_unfitted_raises(self):
        model = SoftmaxRegression()
        X = sp.csr_matrix(np.ones((1, 2)))
        with pytest.raises(RuntimeError):
            model.predict(X)
        with pytest.raises(RuntimeError):
            model.predict_proba(X)

    def test_shape_mismatch(self):
        X = sp.csr_matrix(np.ones((3, 2)))
        with pytest.raises(ValueError):
            SoftmaxRegression().fit(X, [0, 1])

    def test_empty_raises(self):
        X = sp.csr_matrix((0, 4))
        with pytest.raises(ValueError):
            SoftmaxRegression().fit(X, [])

    def test_intercept_handles_shifted_classes(self):
        # Classes identical in features except for frequency: intercept
        # should prefer the frequent one.
        X = sp.csr_matrix(np.zeros((10, 1)))
        y = ["common"] * 9 + ["rare"]
        model = SoftmaxRegression().fit(X, y)
        assert model.predict(X[:1])[0] == "common"

    def test_deterministic(self):
        X, y = separable_data()
        m1 = SoftmaxRegression().fit(X, y)
        m2 = SoftmaxRegression().fit(X, y)
        assert np.allclose(m1.coef_, m2.coef_)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 4), st.integers(5, 15), st.integers(0, 5))
    def test_proba_rows_sum_to_one_property(self, n_classes, n_samples, seed):
        rng = np.random.RandomState(seed)
        X = sp.csr_matrix(rng.randn(n_samples * n_classes, 3))
        y = np.repeat(np.arange(n_classes), n_samples)
        model = SoftmaxRegression(max_iter=50).fit(X, y)
        probabilities = model.predict_proba(X)
        assert np.allclose(probabilities.sum(axis=1), 1.0, atol=1e-8)
