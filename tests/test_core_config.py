"""Tests for repro.core.config."""

from repro.core.config import CeresConfig


class TestCeresConfig:
    def test_paper_defaults(self):
        config = CeresConfig()
        # Values stated in the paper's text.
        assert config.negatives_per_positive == 3
        assert config.confidence_threshold == 0.5
        assert config.min_annotations_per_page == 3
        assert config.max_pages_per_topic == 5
        assert config.classifier_C == 1.0
        assert config.struct_sibling_width == 5

    def test_replace_returns_copy(self):
        config = CeresConfig()
        changed = config.replace(confidence_threshold=0.75)
        assert changed.confidence_threshold == 0.75
        assert config.confidence_threshold == 0.5
        assert changed is not config

    def test_replace_preserves_other_fields(self):
        config = CeresConfig(negatives_per_positive=5)
        changed = config.replace(confidence_threshold=0.9)
        assert changed.negatives_per_positive == 5

    def test_struct_attributes_are_vertex_set(self):
        config = CeresConfig()
        assert set(config.struct_attributes) == {
            "class", "id", "itemprop", "itemtype", "property",
        }
