#!/usr/bin/env python
"""SWDE-style benchmark: distant supervision vs supervised wrappers.

Generates one SWDE vertical (default: movie), seeds the KB per the
paper's protocol, and compares CERES-Full against the supervised
Vertex++ wrapper-induction baseline site by site — the Table 3/4
experiment in miniature.

Run:  python examples/swde_benchmark.py [vertical]
      vertical ∈ {movie, book, nbaplayer, university}
"""

import sys

from repro.core.config import CeresConfig
from repro.datasets import generate_swde, seed_kb_for
from repro.evaluation.experiments.common import run_ceres, run_vertex, split_pages
from repro.evaluation.experiments.swde import scored_predicates
from repro.evaluation.report import format_prf, format_table
from repro.evaluation.scoring import page_hit_scores


def main() -> None:
    vertical = sys.argv[1] if len(sys.argv) > 1 else "movie"
    config = CeresConfig()
    print(f"Generating the synthetic SWDE {vertical!r} vertical ...")
    dataset = generate_swde(vertical, n_sites=4, pages_per_site=24, seed=0)
    kb = seed_kb_for(dataset, 0)
    print(f"Seed KB: {len(kb)} triples ({'universe-derived' if vertical == 'movie' else 'from site 0 ground truth'})\n")

    ds_predicates = scored_predicates(vertical, distantly_supervised=True)
    manual_predicates = scored_predicates(vertical, distantly_supervised=False)

    rows = []
    for site in dataset.sites:
        train_pages, eval_pages = split_pages(site.pages, 0)

        vertex = run_vertex(train_pages, eval_pages, manual_predicates)
        vertex_scores = page_hit_scores(
            vertex.extractions, eval_pages, manual_predicates, vertex.candidates
        )
        vertex_f1s = [s.f1 for s in vertex_scores.values() if s.defined]

        ceres = run_ceres(kb, train_pages, eval_pages, config)
        ceres_scores = page_hit_scores(
            ceres.extractions, eval_pages, ds_predicates, ceres.candidates
        )
        ceres_f1s = [s.f1 for s in ceres_scores.values() if s.defined]

        mean = lambda xs: sum(xs) / len(xs) if xs else 0.0
        annotated = len(ceres.result.annotated_pages) if ceres.result else 0
        rows.append(
            [
                site.name,
                str(len(site.pages)),
                str(annotated),
                format_prf(mean(vertex_f1s)),
                format_prf(mean(ceres_f1s)),
            ]
        )

    print(
        format_table(
            ["Site", "#Pages", "#Annotated", "Vertex++ F1", "CERES-Full F1"],
            rows,
            title=f"SWDE {vertical}: supervised wrappers vs distant supervision",
        )
    )
    print(
        "\nVertex++ reads two manually annotated pages per site;"
        "\nCERES-Full reads none — its labels come from KB alignment alone."
    )


if __name__ == "__main__":
    main()
