#!/usr/bin/env python
"""Complex-site walkthrough: why Algorithm 2 matters (Section 5.4).

Generates the synthetic IMDb testbed — person pages with "Known For"
blocks, role-sectioned filmographies, "Projects in Development", aliases
that double as character names — and contrasts CERES-Full against the
CERES-Topic baseline that annotates every mention of every object.

Run:  python examples/imdb_complex_site.py
"""

from repro.baselines.ceres_topic import make_ceres_topic_pipeline
from repro.core import CeresConfig, CeresPipeline
from repro.datasets import generate_imdb
from repro.datasets.imdb import PERSON_PREDICATES
from repro.evaluation.experiments.common import split_pages
from repro.evaluation.report import format_prf, format_table
from repro.evaluation.scoring import annotation_scores, node_level_scores
from repro.ml.metrics import PRF


def pooled(scores: dict[str, PRF]) -> PRF:
    total = PRF()
    for score in scores.values():
        total += score
    return total


def main() -> None:
    print("Generating the synthetic IMDb testbed (hazards included) ...")
    dataset = generate_imdb(seed=0, n_films=40, n_people=32, n_episodes=12)
    kb = dataset.kb
    config = CeresConfig()
    train_pages, eval_pages = split_pages(dataset.person_pages, seed=0)
    train_docs = [p.document for p in train_pages]
    eval_docs = [p.document for p in eval_pages]

    rows = []
    for label, pipeline in (
        ("CERES-Topic (all mentions)", make_ceres_topic_pipeline(kb, config)),
        ("CERES-Full  (Algorithm 2)", CeresPipeline(kb, config)),
    ):
        annotated = pipeline.annotate(train_docs)
        ann = pooled(
            annotation_scores(annotated.annotated_pages, train_pages, kb,
                              [p for p in PERSON_PREDICATES if p != "name"])
        )
        pipeline.train(train_docs, annotated)
        pipeline.extract(annotated, eval_docs)
        ext = pooled(
            node_level_scores(annotated.extractions, eval_pages,
                              PERSON_PREDICATES, annotated.candidates)
        )
        rows.append(
            [
                label,
                format_prf(ann.precision), format_prf(ann.recall),
                format_prf(ext.precision), format_prf(ext.recall),
                format_prf(ext.f1),
            ]
        )

    print()
    print(
        format_table(
            ["System", "Ann P", "Ann R", "Ext P", "Ext R", "Ext F1"],
            rows,
            title="IMDb person pages: annotation & extraction quality",
        )
    )
    print(
        "\nThe gap is the paper's Table 5/6 story: annotating every mention"
        "\n(Known For, recommendation rails, character names) poisons the"
        "\ntraining labels; Algorithm 2's local + global evidence keeps them"
        "\nclean at a small cost in recall."
    )


if __name__ == "__main__":
    main()
