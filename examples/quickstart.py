#!/usr/bin/env python
"""Quickstart: distantly supervised extraction from one movie website.

Builds a tiny seed KB by hand, renders a handful of semi-structured movie
pages, and runs the full CERES pipeline — topic identification (Algorithm
1), relation annotation (Algorithm 2), classifier training, extraction —
printing every stage's output.

Run:  python examples/quickstart.py
"""

from repro.core import CeresConfig, CeresPipeline
from repro.dom import parse_html
from repro.kb import Entity, KnowledgeBase, Ontology, Predicate, Value


def build_seed_kb() -> KnowledgeBase:
    """A seed KB of well-known facts (the 'existing knowledge base')."""
    ontology = Ontology(
        [
            Predicate("directed_by", domain="film", range_kind="entity"),
            Predicate("genre", domain="film", range_kind="string", multi_valued=True),
            Predicate("release_date", domain="film", range_kind="date"),
        ]
    )
    kb = KnowledgeBase(ontology)
    films = [
        ("f1", "Do the Right Thing", "Spike Lee", ("Drama", "Comedy"), "1989-06-30"),
        ("f2", "Crooklyn", "Spike Lee", ("Drama",), "1994-05-13"),
        ("f3", "Paper Moon Parade", "Greta Holt", ("Comedy", "Musical"), "1977-03-02"),
        ("f4", "The Crimson Harbor", "Omar Santos", ("Thriller",), "2003-11-21"),
        ("f5", "Silent Meridian", "Greta Holt", ("Drama",), "1981-07-19"),
        ("f6", "Electric Orchard", "Omar Santos", ("Comedy",), "1999-04-09"),
    ]
    directors = {}
    for film_id, title, director, genres, date in films:
        kb.add_entity(Entity(film_id, title, "film"))
        if director not in directors:
            directors[director] = f"p{len(directors)}"
            kb.add_entity(Entity(directors[director], director, "person"))
        kb.add_fact(film_id, "directed_by", Value.entity(directors[director]))
        for genre in genres:
            kb.add_fact(film_id, "genre", Value.literal(genre))
        kb.add_fact(film_id, "release_date", Value.literal(date))
    return kb


def render_site() -> list[str]:
    """Six detail pages from one (imaginary) semi-structured site.

    The site displays dates in its own format and knows facts the KB also
    knows — that overlap is what distant supervision exploits.  Note the
    final page: a film the KB has never seen, which CERES will extract
    anyway (long-tail discovery).
    """
    site_facts = [
        ("Do the Right Thing", "Spike Lee", ["Drama", "Comedy"], "June 30, 1989"),
        ("Crooklyn", "Spike Lee", ["Drama"], "May 13, 1994"),
        ("Paper Moon Parade", "Greta Holt", ["Comedy", "Musical"], "March 2, 1977"),
        ("The Crimson Harbor", "Omar Santos", ["Thriller"], "November 21, 2003"),
        ("Silent Meridian", "Greta Holt", ["Drama"], "July 19, 1981"),
        ("Electric Orchard", "Omar Santos", ["Comedy"], "April 9, 1999"),
        # Unknown to the KB:
        ("The Hidden Vineyard", "Mina Okafor", ["Mystery"], "August 4, 2011"),
    ]
    pages = []
    for title, director, genres, date in site_facts:
        genre_spans = "".join(f"<span class='genre'>{g}</span>" for g in genres)
        pages.append(
            "<html><body><div class='content'>"
            f"<h1 class='movie-title'>{title}</h1>"
            "<table class='facts'>"
            f"<tr><td class='k'>Directed by</td><td class='v'>{director}</td></tr>"
            f"<tr><td class='k'>Released</td><td class='v'>{date}</td></tr>"
            "</table>"
            f"<div class='genre-box'><h4>Genres</h4>{genre_spans}</div>"
            "<div class='promo'>Subscribe to our newsletter!</div>"
            "</div></body></html>"
        )
    return pages


def main() -> None:
    kb = build_seed_kb()
    print(f"Seed KB: {len(kb)} triples over {len(kb.entities)} entities\n")

    documents = [parse_html(html, url=f"page{i}") for i, html in enumerate(render_site())]

    config = CeresConfig(min_cluster_size=2)
    pipeline = CeresPipeline(kb, config)

    # Stage 1+2: automatic annotation.
    result = pipeline.annotate(documents)
    print("— Annotation —")
    for page in result.annotated_pages:
        topic = kb.entity(page.topic_entity_id).name
        print(f"page {page.page_index}: topic = {topic!r}")
        for annotation in page.annotations:
            print(
                f"    {annotation.predicate:14s} -> {annotation.node.text!r}"
                f"   ({annotation.node.xpath})"
            )

    # Stage 3: train the node classifier.
    pipeline.train(documents, result)
    model = result.cluster_results[0].model
    print(f"\nTrained classifier over classes: {model.labels}")

    # Stage 4: extract from every page — including the one the KB lacks.
    pipeline.extract(result, documents)
    print("\n— Extraction —")
    for extraction in result.extractions:
        print(
            f"page {extraction.page_index}: "
            f"({extraction.subject!r}, {extraction.predicate}, {extraction.object!r}) "
            f"@ {extraction.confidence:.2f}"
        )

    new_subjects = {
        e.subject
        for e in result.extractions
        if not kb.entity_ids_for_text(e.subject)
    }
    print(f"\nLong-tail subjects discovered (not in the seed KB): {new_subjects}")


if __name__ == "__main__":
    main()
