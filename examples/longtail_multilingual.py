#!/usr/bin/env python
"""Long-tail, multi-lingual extraction (the Section 5.5 scenario).

Runs CERES over a handful of synthetic niche movie sites — Italian,
Danish, and Czech label vocabularies, low KB overlap, and two hazard
sites — then prints the per-site breakdown and the precision/volume
trade-off across confidence thresholds (the Figure 6 sweep).

Run:  python examples/longtail_multilingual.py
"""

from repro.datasets.commoncrawl import CCSiteConfig, generate_commoncrawl
from repro.evaluation.experiments import run_figure6, run_table8

SITES = (
    CCSiteConfig("themoviedb", "General film information", "en", 36, 0.85),
    CCSiteConfig("filmitalia", "Italian films", "it", 24, 0.6),
    CCSiteConfig("danskefilm", "Danish films", "da", 24, 0.65),
    CCSiteConfig("kinobox", "Czech films", "cs", 24, 0.55),
    CCSiteConfig(
        "laborfilms", "Labor movement films", "en", 14, 0.45,
        hazards=frozenset({"all_genres"}),
    ),
    CCSiteConfig(
        "spicyonion", "Indian films", "en", 18, 0.5,
        hazards=frozenset({"role_conflation"}),
    ),
    CCSiteConfig(
        "boxofficemojo", "Financial performance", "en", 0, 0.0,
        hazards=frozenset({"charts_only"}), n_noise_pages=12,
    ),
)


def main() -> None:
    print("Generating synthetic long-tail sites and running CERES per site ...")
    dataset = generate_commoncrawl(seed=0, sites=SITES)
    table, dataset, results = run_table8(seed=0, sites=SITES, dataset=dataset)

    print()
    print(table.format())
    print(
        "\nReading the table: the clean, high-overlap site extracts at ~1.0"
        "\nprecision; foreign-language sites work because CERES never reads"
        "\nthe labels — structure and KB alignment carry the signal; the"
        "\nall-genres and role-conflation hazard sites sink, and the chart-"
        "\nonly site correctly yields nothing."
    )

    figure = run_figure6(dataset, results)
    print()
    print(figure.format())
    print(
        "\nRaising the confidence threshold trades extraction volume for"
        "\nprecision — the knob behind the paper's '1.25M facts at 90%"
        "\nprecision' headline."
    )


if __name__ == "__main__":
    main()
